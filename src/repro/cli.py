"""Command-line interface: ``python -m repro <command>``.

Nine subcommands expose the library's main surfaces:

* ``compress`` / ``decompress`` — run any of the from-scratch codecs on a
  file (buffer-in/buffer-out, §3.4's stable API).
* ``stream`` — pipe stdin to stdout through a codec's incremental
  compress/decompress context chunk-by-chunk (§3.4's "streaming
  equivalent"); ``--chunk-size`` controls the feed granularity.
* ``fleet`` — print the §3 fleet-profiling summary from a synthetic sample.
* ``dse`` — run one of the Figure 11-15 sweeps and print its table
  (``--jobs N`` fans design points over worker processes; ``--cache`` /
  ``--no-cache`` controls the persistent store under ``results/.dse-cache``).
* ``summaries`` — regenerate FINAL_TEXT_SUMMARIES from a full exploration
  (same ``--jobs``/``--cache`` engine options).
* ``stats`` — run an instrumented workload (codec round-trips, or a fig11
  smoke sweep) and print the metric snapshot (see :mod:`repro.obs`).
* ``serve`` — stand up the async compression service and replay an
  open-loop fleet-mix load against it (see :mod:`repro.service`);
  ``--validate`` replays the served workload through the queueing
  simulator and compares predicted vs measured service levels.
* ``lint`` — run the codec-aware static-analysis pass (rules R001-R013).
* ``sanitize`` — re-execute a target run (DSE sweep, lint, stream, stats,
  serve) under varied ``PYTHONHASHSEED``/worker-count environments and diff the
  artifacts byte-for-byte (see :mod:`repro.sanitize`).

The global ``--trace <file>`` flag (before the subcommand) enables the
observability layer for any command and writes a Chrome trace-event JSON on
exit — load it in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms.registry import available_codecs, get_codec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CDPU (ISCA'23) reproduction: codecs, fleet study, benchmark "
        "generation and CDPU design-space exploration.",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable observability and write a Chrome trace-event JSON "
        "(viewable in chrome://tracing or Perfetto) when the command exits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="compress a file with one of the codecs")
    comp.add_argument("input", help="input path ('-' for stdin)")
    comp.add_argument("output", help="output path ('-' for stdout)")
    comp.add_argument("--algorithm", "-a", choices=available_codecs(), default="snappy")
    comp.add_argument("--level", "-l", type=int, default=None)
    comp.add_argument("--window-log", type=int, default=None, help="log2 window size")

    decomp = sub.add_parser("decompress", help="decompress a file")
    decomp.add_argument("input")
    decomp.add_argument("output")
    decomp.add_argument("--algorithm", "-a", choices=available_codecs(), default="snappy")

    stream = sub.add_parser(
        "stream",
        help="pipe stdin to stdout through an incremental codec context",
    )
    stream.add_argument(
        "direction",
        choices=["compress", "decompress"],
        help="which direction to stream",
    )
    stream.add_argument(
        "--codec",
        "--algorithm",
        "-a",
        dest="codec",
        choices=available_codecs(),
        default="snappy",
    )
    stream.add_argument(
        "--chunk-size",
        type=int,
        default=64 * 1024,
        metavar="BYTES",
        help="bytes fed to the context per step (default 65536)",
    )
    stream.add_argument("--level", "-l", type=int, default=None)

    fleet = sub.add_parser("fleet", help="print the fleet profiling summary (paper §3)")
    fleet.add_argument("--calls", type=int, default=120_000)
    fleet.add_argument("--seed", type=int, default=0)

    dse = sub.add_parser("dse", help="run one paper experiment (Figures 11-15)")
    dse.add_argument(
        "figure", choices=["fig11", "fig12", "fig13", "fig14", "fig15"],
        help="which figure's sweep to run",
    )
    dse.add_argument(
        "--files-per-suite",
        type=int,
        default=None,
        metavar="N",
        help="reduce the benchmark to N files per suite (default: full 48; "
        "small values give tier-1-sized runs for CI and `repro sanitize`)",
    )
    _add_engine_options(dse)

    summaries = sub.add_parser(
        "summaries", help="regenerate FINAL_TEXT_SUMMARIES (full DSE)"
    )
    _add_engine_options(summaries)

    graph = sub.add_parser(
        "graph", help="inspect and run composable codec graphs"
    )
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)
    graph_sub.add_parser("list", help="list registered graph presets")
    graph_describe = graph_sub.add_parser(
        "describe", help="describe a preset pipeline or a .bin graph frame"
    )
    graph_describe.add_argument(
        "target", help="preset name (e.g. graph-delta-fse) or path to a frame"
    )
    graph_roundtrip = graph_sub.add_parser(
        "roundtrip", help="compress + decompress a file through a preset"
    )
    graph_roundtrip.add_argument("preset", help="preset name")
    graph_roundtrip.add_argument(
        "input", nargs="?", default="-", help="input file (default: stdin)"
    )
    graph_sweep = graph_sub.add_parser(
        "sweep",
        help="score the transform-chain x backend lattice per workload "
        "against every monolithic codec",
    )
    graph_sweep.add_argument("--seed", type=int, default=None)
    graph_sweep.add_argument("--size", type=int, default=None, metavar="BYTES")
    graph_sweep.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON artifact (e.g. results/graph_dse.json)",
    )

    stats = sub.add_parser(
        "stats",
        help="run an instrumented workload and print the metrics snapshot",
    )
    stats.add_argument(
        "--workload",
        choices=["roundtrip", "fig11", "sim"],
        default="roundtrip",
        help="what to instrument: every codec's round-trip on a small payload "
        "(default), a Figure 11 smoke sweep (2 design points, cache-backed), "
        "or a short queueing-simulator run",
    )
    stats.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        dest="stats_format",
        help="snapshot rendering (json is deterministic for a given workload state)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async serving layer under an open-loop fleet-mix load",
    )
    serve.add_argument("--calls", type=int, default=200, help="offered call count")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--codecs",
        default="snappy,zstd",
        help="comma-separated codec lanes to offer traffic to (default snappy,zstd)",
    )
    serve.add_argument(
        "--workers",
        "-j",
        type=int,
        default=None,
        help="process-pool workers per codec lane (default: $REPRO_JOBS, else 1)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8, help="requests per worker round-trip"
    )
    serve.add_argument(
        "--no-batch",
        dest="batching",
        action="store_false",
        default=True,
        help="dispatch one request per worker round-trip",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="bounded outstanding requests per lane; beyond it requests shed "
        "with a typed ServiceOverloadError",
    )
    serve.add_argument(
        "--max-payload",
        type=int,
        default=None,
        metavar="BYTES",
        help="cap sampled call sizes (pure-python codecs; default 4 KiB)",
    )
    pacing = serve.add_mutually_exclusive_group()
    pacing.add_argument(
        "--target-utilization",
        type=float,
        default=0.6,
        help="calibrate arrival pacing to this offered utilization (default 0.6)",
    )
    pacing.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="fixed multiplier on trace arrival times instead of calibration "
        "(0 offers every call at t=0)",
    )
    serve.add_argument(
        "--validate",
        action="store_true",
        help="replay the served workload through the queueing simulator and "
        "report predicted vs measured service levels",
    )
    serve.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        dest="serve_format",
    )

    # ``lint`` and ``sanitize`` own their own argparse (repro.lint.cli /
    # repro.sanitize.cli); capture everything after the subcommand and
    # forward it verbatim.
    lint = sub.add_parser(
        "lint",
        help="run the static-analysis pass (R001-R013)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    sanitize = sub.add_parser(
        "sanitize",
        help="re-run a target under varied env and diff artifacts byte-for-byte",
        add_help=False,
    )
    sanitize.add_argument("sanitize_args", nargs=argparse.REMAINDER)
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Sweep-engine knobs shared by the DSE-driven subcommands."""
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS, else serial)",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="reuse/populate the on-disk result cache under results/.dse-cache (default)",
    )
    cache.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="evaluate every design point from scratch",
    )


def _build_runner(args: argparse.Namespace, bench=None):
    """A DseRunner honouring the --jobs/--cache engine options."""
    from repro.dse import DseCache, DseRunner

    cache = DseCache() if args.cache else None
    return DseRunner(bench, jobs=args.jobs, cache=cache)


def _read(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
        return
    with open(path, "wb") as handle:
        handle.write(data)


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError

    codec = get_codec(args.algorithm)
    data = _read(args.input)
    window = (1 << args.window_log) if args.window_log else None
    try:
        compressed = codec.compress(data, level=args.level, window_size=window)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _write(args.output, compressed)
    ratio = len(data) / max(1, len(compressed))
    print(
        f"{args.algorithm}: {len(data)} -> {len(compressed)} bytes ({ratio:.2f}x)",
        file=sys.stderr,
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.common.errors import CorruptStreamError

    codec = get_codec(args.algorithm)
    try:
        output = codec.decompress(_read(args.input))
    except CorruptStreamError as exc:
        print(f"error: corrupt stream: {exc}", file=sys.stderr)
        return 1
    _write(args.output, output)
    print(f"{args.algorithm}: {len(output)} bytes restored", file=sys.stderr)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError

    if args.chunk_size <= 0:
        print(f"error: --chunk-size must be positive, got {args.chunk_size}", file=sys.stderr)
        return 2
    codec = get_codec(args.codec)
    if args.direction == "compress":
        ctx = codec.compress_context(level=args.level)
    else:
        ctx = codec.decompress_context()
    stdin, stdout = sys.stdin.buffer, sys.stdout.buffer
    bytes_in = bytes_out = 0
    try:
        while True:
            chunk = stdin.read(args.chunk_size)
            if not chunk:
                break
            bytes_in += len(chunk)
            out = ctx.feed(chunk)
            bytes_out += len(out)
            stdout.write(out)
        out = ctx.flush()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    bytes_out += len(out)
    stdout.write(out)
    stdout.flush()
    print(
        f"{args.codec} stream {args.direction}: {bytes_in} -> {bytes_out} bytes "
        f"(chunks of {args.chunk_size}, peak buffered {ctx.max_buffered_bytes})",
        file=sys.stderr,
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import analysis as A
    from repro.fleet import generate_fleet_profile

    profile = generate_fleet_profile(seed=args.seed, num_calls=args.calls)
    print(f"fleet sample: {len(profile):,} calls (seed {args.seed})")
    print(f"  decompression cycle share : {100 * A.decompression_cycle_fraction(profile):.1f}%")
    print(f"  lightweight comp bytes    : {100 * A.lightweight_compress_byte_share(profile):.1f}%")
    print(f"  decompressions per byte   : {A.decompression_reuse_factor(profile):.2f}")
    print(f"  ZStd bytes at level <= 3  : {100 * A.zstd_level_cdf_at(profile, 3):.1f}%")
    print(f"  file-format caller cycles : {100 * A.file_format_cycle_share(profile):.1f}%")
    ratios = A.compression_ratio_by_bin(profile)
    print(
        "  aggregate ratios          : "
        + "  ".join(f"{k}={v:.2f}" for k, v in sorted(ratios.items()))
    )
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import experiments

    bench = None
    if args.files_per_suite is not None:
        from repro.hcbench.suite import default_benchmark

        bench = default_benchmark(seed=0, files_per_suite=args.files_per_suite)
    runner = _build_runner(args, bench)
    figure = {
        "fig11": experiments.fig11_snappy_decompression,
        "fig12": experiments.fig12_snappy_compression,
        "fig13": experiments.fig13_snappy_compression_small_ht,
        "fig14": experiments.fig14_zstd_decompression,
        "fig15": experiments.fig15_zstd_compression,
    }[args.figure](runner)
    print(figure.to_table())
    return 0


def _cmd_summaries(args: argparse.Namespace) -> int:
    from repro.dse.summaries import final_text_summaries

    print(final_text_summaries(_build_runner(args)))
    return 0


def _stats_workload_roundtrip() -> None:
    """Round-trip every registered codec on a small mixed payload."""
    from repro.common.errors import ReproError

    payload = (b"the quick brown fox jumps over the lazy dog. " * 40) + bytes(
        range(256)
    )
    for name in available_codecs():
        codec = get_codec(name)
        try:
            compressed = codec.compress(payload)
            codec.decompress(compressed)
        except ReproError as exc:  # pragma: no cover - registry codecs round-trip
            print(f"warning: {name} failed round-trip: {exc}", file=sys.stderr)


def _stats_workload_fig11() -> None:
    """A 2-point cache-backed slice of the Figure 11 sweep.

    Runs the same points twice through one fresh cache so the snapshot shows
    the full cache life-cycle — ``dse.cache.miss``/``store`` on the cold pass,
    ``dse.cache.hit`` on the warm one — plus codec/stage activity from the
    evaluations themselves. Uses a reduced benchmark (4 files per suite) so
    the smoke run stays interactive.
    """
    import tempfile

    from repro.algorithms.base import Operation
    from repro.core.params import CdpuConfig
    from repro.dse.cache import DseCache
    from repro.dse.parallel import evaluate_points
    from repro.dse.runner import DesignPoint, DseRunner
    from repro.hcbench.suite import default_benchmark
    from repro.soc.placement import Placement

    runner = DseRunner(default_benchmark(seed=0, files_per_suite=4))
    points = [
        DesignPoint(
            algorithm="snappy",
            operation=Operation.DECOMPRESS,
            config=CdpuConfig(placement=placement),
        )
        for placement in (Placement.ROCC, Placement.PCIE_NO_CACHE)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-stats-cache-") as tmp:
        cache = DseCache(tmp)
        evaluate_points(runner, points, cache=cache)
        evaluate_points(runner, points, cache=cache)


def _stats_workload_sim() -> None:
    """A short queueing run against the software-baseline service model."""
    from repro.fleet import generate_fleet_profile
    from repro.sim.arrivals import poisson_trace
    from repro.sim.queueing import ServiceModel, simulate

    profile = generate_fleet_profile(seed=0, num_calls=2000)
    service = ServiceModel.software_baseline()
    trace = poisson_trace(
        profile, seed=0, num_calls=500, algorithms=["snappy", "zstd"]
    )
    simulate(trace, service, lanes=2)


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.algorithms.graphs import (
        GRAPH_PRESETS,
        describe_frame,
        describe_graph,
        graph_presets,
    )
    from repro.common.errors import ReproError

    try:
        if args.graph_command == "list":
            for name in graph_presets():
                print(f"{name:18s} {describe_graph(GRAPH_PRESETS[name])}")
            return 0
        if args.graph_command == "describe":
            if args.target in GRAPH_PRESETS:
                print(f"{args.target}: {describe_graph(GRAPH_PRESETS[args.target])}")
                return 0
            info = describe_frame(_read(args.target))
            print(f"pipeline       : {info['pipeline']}")
            print(f"content length : {info['content_length']} bytes")
            print(f"body           : {info['body_bytes']} bytes")
            escaped = "yes (pipeline expanded; body stored verbatim)" if info[
                "raw_escape"
            ] else "no"
            print(f"raw escape     : {escaped}")
            return 0
        if args.graph_command == "roundtrip":
            codec = get_codec(args.preset)
            data = _read(args.input)
            frame = codec.compress(data)
            restored = codec.decompress(frame)
            if restored != data:
                print("error: round trip diverged", file=sys.stderr)
                return 1
            ratio = len(frame) / max(1, len(data))
            print(
                f"{args.preset}: {len(data)} -> {len(frame)} bytes "
                f"(ratio {ratio:.4f}), round trip OK"
            )
            return 0
        # sweep
        from repro.dse.graphs import sweep_graph_designs, sweep_summary_lines

        kwargs = {}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.size is not None:
            kwargs["size"] = args.size
        payload = sweep_graph_designs(**kwargs)
        for line in sweep_summary_lines(payload):
            print(line)
        if args.out:
            import json

            _write(
                args.out,
                (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
            )
            print(f"wrote {args.out}", file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs

    obs.enable()
    obs.reset()  # only this workload's activity in the report
    workload = {
        "roundtrip": _stats_workload_roundtrip,
        "fig11": _stats_workload_fig11,
        "sim": _stats_workload_sim,
    }[args.workload]
    with obs.span(f"stats.{args.workload}", category="cli"):
        workload()
    snap = obs.snapshot()
    if args.stats_format == "json":
        print(snap.to_json())
    else:
        print(snap.render_human())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError
    from repro.service import ServiceConfig, ServiceHarness, WorkloadSpec
    from repro.service.validation import validate_against_sim

    codecs = tuple(name for name in args.codecs.split(",") if name)
    try:
        spec_kwargs = dict(
            seed=args.seed,
            num_calls=args.calls,
            algorithms=codecs,
            time_scale=args.time_scale if args.time_scale is not None else 1.0,
        )
        if args.max_payload is not None:
            spec_kwargs["max_payload_bytes"] = args.max_payload
        spec = WorkloadSpec(**spec_kwargs)
        config = ServiceConfig(
            workers=args.workers,
            max_batch=args.max_batch,
            batching=args.batching,
            max_queue_depth=args.queue_depth,
        )
        harness = ServiceHarness(spec, config)
        if args.time_scale is None:
            harness.calibrate_time_scale(args.target_utilization)
        trace = harness.effective_trace()
        report = harness.run(verify=True)
        validation = None
        if args.validate:
            validation = validate_against_sim(report, trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.serve_format == "json":
        payload = report.to_payload()
        if validation is not None:
            payload["sim_validation"] = validation.to_payload()
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render_human())
        if validation is not None:
            print(validation.render_human())
    nonconforming = sum(
        1 for r in report.records if r.status == "ok" and r.conforms is False
    )
    if nonconforming:
        print(
            f"error: {nonconforming} responses diverged from one-shot output",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.sanitize.cli import main as sanitize_main

    return sanitize_main(args.sanitize_args)


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "stream": _cmd_stream,
    "fleet": _cmd_fleet,
    "dse": _cmd_dse,
    "summaries": _cmd_summaries,
    "graph": _cmd_graph,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Dispatch ``lint`` before argparse: REMAINDER does not reliably capture
    # leading options after a subcommand (python bug bpo-17050), and lint
    # owns its own parser anyway.
    if argv[:1] == ["lint"]:
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["sanitize"]:
        from repro.sanitize.cli import main as sanitize_main

        return sanitize_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.trace is None:
        return _COMMANDS[args.command](args)

    from repro import obs

    obs.enable()
    try:
        status = _COMMANDS[args.command](args)
    finally:
        written = obs.export_chrome_trace(args.trace)
        print(f"trace: {written} spans -> {args.trace}", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
