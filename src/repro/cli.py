"""Command-line interface: ``python -m repro <command>``.

Six subcommands expose the library's main surfaces:

* ``compress`` / ``decompress`` — run any of the from-scratch codecs on a
  file (buffer-in/buffer-out, §3.4's stable API).
* ``fleet`` — print the §3 fleet-profiling summary from a synthetic sample.
* ``dse`` — run one of the Figure 11-15 sweeps and print its table
  (``--jobs N`` fans design points over worker processes; ``--cache`` /
  ``--no-cache`` controls the persistent store under ``results/.dse-cache``).
* ``summaries`` — regenerate FINAL_TEXT_SUMMARIES from a full exploration
  (same ``--jobs``/``--cache`` engine options).
* ``lint`` — run the codec-aware static-analysis pass (rules R001-R005).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms.registry import available_codecs, get_codec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CDPU (ISCA'23) reproduction: codecs, fleet study, benchmark "
        "generation and CDPU design-space exploration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="compress a file with one of the codecs")
    comp.add_argument("input", help="input path ('-' for stdin)")
    comp.add_argument("output", help="output path ('-' for stdout)")
    comp.add_argument("--algorithm", "-a", choices=available_codecs(), default="snappy")
    comp.add_argument("--level", "-l", type=int, default=None)
    comp.add_argument("--window-log", type=int, default=None, help="log2 window size")

    decomp = sub.add_parser("decompress", help="decompress a file")
    decomp.add_argument("input")
    decomp.add_argument("output")
    decomp.add_argument("--algorithm", "-a", choices=available_codecs(), default="snappy")

    fleet = sub.add_parser("fleet", help="print the fleet profiling summary (paper §3)")
    fleet.add_argument("--calls", type=int, default=120_000)
    fleet.add_argument("--seed", type=int, default=0)

    dse = sub.add_parser("dse", help="run one paper experiment (Figures 11-15)")
    dse.add_argument(
        "figure", choices=["fig11", "fig12", "fig13", "fig14", "fig15"],
        help="which figure's sweep to run",
    )
    _add_engine_options(dse)

    summaries = sub.add_parser(
        "summaries", help="regenerate FINAL_TEXT_SUMMARIES (full DSE)"
    )
    _add_engine_options(summaries)

    # ``lint`` owns its own argparse (repro.lint.cli); capture everything
    # after the subcommand and forward it verbatim.
    lint = sub.add_parser(
        "lint",
        help="run the static-analysis pass (R001-R005)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Sweep-engine knobs shared by the DSE-driven subcommands."""
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS, else serial)",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="reuse/populate the on-disk result cache under results/.dse-cache (default)",
    )
    cache.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="evaluate every design point from scratch",
    )


def _build_runner(args: argparse.Namespace):
    """A DseRunner honouring the --jobs/--cache engine options."""
    from repro.dse import DseCache, DseRunner

    cache = DseCache() if args.cache else None
    return DseRunner(jobs=args.jobs, cache=cache)


def _read(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
        return
    with open(path, "wb") as handle:
        handle.write(data)


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError

    codec = get_codec(args.algorithm)
    data = _read(args.input)
    window = (1 << args.window_log) if args.window_log else None
    try:
        compressed = codec.compress(data, level=args.level, window_size=window)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _write(args.output, compressed)
    ratio = len(data) / max(1, len(compressed))
    print(
        f"{args.algorithm}: {len(data)} -> {len(compressed)} bytes ({ratio:.2f}x)",
        file=sys.stderr,
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.common.errors import CorruptStreamError

    codec = get_codec(args.algorithm)
    try:
        output = codec.decompress(_read(args.input))
    except CorruptStreamError as exc:
        print(f"error: corrupt stream: {exc}", file=sys.stderr)
        return 1
    _write(args.output, output)
    print(f"{args.algorithm}: {len(output)} bytes restored", file=sys.stderr)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import analysis as A
    from repro.fleet import generate_fleet_profile

    profile = generate_fleet_profile(seed=args.seed, num_calls=args.calls)
    print(f"fleet sample: {len(profile):,} calls (seed {args.seed})")
    print(f"  decompression cycle share : {100 * A.decompression_cycle_fraction(profile):.1f}%")
    print(f"  lightweight comp bytes    : {100 * A.lightweight_compress_byte_share(profile):.1f}%")
    print(f"  decompressions per byte   : {A.decompression_reuse_factor(profile):.2f}")
    print(f"  ZStd bytes at level <= 3  : {100 * A.zstd_level_cdf_at(profile, 3):.1f}%")
    print(f"  file-format caller cycles : {100 * A.file_format_cycle_share(profile):.1f}%")
    ratios = A.compression_ratio_by_bin(profile)
    print(
        "  aggregate ratios          : "
        + "  ".join(f"{k}={v:.2f}" for k, v in sorted(ratios.items()))
    )
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import experiments

    runner = _build_runner(args)
    figure = {
        "fig11": experiments.fig11_snappy_decompression,
        "fig12": experiments.fig12_snappy_compression,
        "fig13": experiments.fig13_snappy_compression_small_ht,
        "fig14": experiments.fig14_zstd_decompression,
        "fig15": experiments.fig15_zstd_compression,
    }[args.figure](runner)
    print(figure.to_table())
    return 0


def _cmd_summaries(args: argparse.Namespace) -> int:
    from repro.dse.summaries import final_text_summaries

    print(final_text_summaries(_build_runner(args)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "fleet": _cmd_fleet,
    "dse": _cmd_dse,
    "summaries": _cmd_summaries,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Dispatch ``lint`` before argparse: REMAINDER does not reliably capture
    # leading options after a subcommand (python bug bpo-17050), and lint
    # owns its own parser anyway.
    if argv[:1] == ["lint"]:
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
