"""Codec throughput matrix + vectorized-kernel gates.

Emits ``results/BENCH_codecs.json`` — the codec layer's perf trajectory
artifact, mirroring ``BENCH_lint.json``/``BENCH_service.json``: MB/s for
every codec × operation × size class, one-shot vs streaming (the streaming
cell reuses one ``reset()`` context across iterations, i.e. it measures the
serving layer's per-worker regime).

Two kinds of gate:

* **Hard** — the vectorized CRC-32C and Huffman-decode kernels must beat the
  retained scalar reference loops by ``REQUIRED_KERNEL_SPEEDUP``x at the
  4 KiB size class. This is architectural (numpy fold vs per-byte Python
  loop), not machine-dependent, so it fails the build.
* **Soft** — cell-by-cell comparison against the *committed* baseline. CI
  machines vary, so a throughput drop beyond ``SOFT_REGRESSION_RATIO``x
  emits a prominent warning for the reviewer rather than failing the build.

Refresh the baseline by committing the regenerated file::

    PYTHONPATH=src python -m pytest benchmarks/test_codec_throughput.py -q
    git add results/BENCH_codecs.json
"""

import json
import time
import warnings
from pathlib import Path

import pytest

from repro.algorithms.registry import available_codecs, get_codec
from repro.corpus.sources import mixed_source

#: Hard gate: vectorized kernel vs retained scalar reference at 4 KiB.
REQUIRED_KERNEL_SPEEDUP = 3.0
#: Soft gate: warn (don't fail) when a cell is this much slower than the
#: committed baseline.
SOFT_REGRESSION_RATIO = 3.0

SIZE_CLASSES = {"1KiB": 1024, "4KiB": 4096, "64KiB": 64 * 1024}

#: Per-cell measurement budget; slow pure-Python cells settle for one run.
TIME_BUDGET_SECONDS = 0.12
MAX_ITERATIONS = 30

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BASELINE = _REPO_ROOT / "results" / "BENCH_codecs.json"


def _mbps(fn, num_bytes: int) -> float:
    """Mean throughput of ``fn`` in MB/s under the cell time budget."""
    fn()  # warm caches (tables, scratch state) outside the timed region
    iterations = 0
    begin = time.perf_counter()
    while True:
        fn()
        iterations += 1
        elapsed = time.perf_counter() - begin
        if elapsed >= TIME_BUDGET_SECONDS or iterations >= MAX_ITERATIONS:
            break
    return num_bytes * iterations / elapsed / 1e6


def _payload(size: int) -> bytes:
    return mixed_source(7, size)


@pytest.mark.bench
def test_codec_throughput_matrix_and_baseline(results_dir):
    matrix = {}
    for codec_name in sorted(available_codecs()):
        codec = get_codec(codec_name)
        matrix[codec_name] = {}
        for size_name, size in SIZE_CLASSES.items():
            raw = _payload(size)
            frame = codec.compress(raw)
            cctx = codec.compress_context()
            dctx = codec.decompress_context()

            def stream_compress():
                cctx.reset()
                return cctx.feed(raw) + cctx.flush()

            def stream_decompress():
                dctx.reset()
                return dctx.feed(frame) + dctx.flush()

            assert stream_compress() == frame
            assert stream_decompress() == raw
            cell = {
                "compress": {
                    "one_shot": round(_mbps(lambda: codec.compress(raw), size), 3),
                    "streaming": round(_mbps(stream_compress, size), 3),
                },
                "decompress": {
                    "one_shot": round(_mbps(lambda: codec.decompress(frame), size), 3),
                    "streaming": round(_mbps(stream_decompress, size), 3),
                },
            }
            matrix[codec_name][size_name] = cell

    kernels = _kernel_speedups()
    payload = {
        "benchmark": "codecs",
        "units": "MB/s of uncompressed bytes",
        "size_classes": SIZE_CLASSES,
        "throughput_mbps": matrix,
        "kernels": kernels,
    }

    previous = None
    if _BASELINE.exists():
        previous = json.loads(_BASELINE.read_text())
    (results_dir / "BENCH_codecs.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    if previous is not None:
        regressions = []
        for codec_name, sizes in previous.get("throughput_mbps", {}).items():
            for size_name, ops in sizes.items():
                for op, modes in ops.items():
                    for mode, before in modes.items():
                        now = (
                            matrix.get(codec_name, {})
                            .get(size_name, {})
                            .get(op, {})
                            .get(mode)
                        )
                        if before and now and before > SOFT_REGRESSION_RATIO * now:
                            regressions.append(
                                f"{codec_name}/{size_name}/{op}/{mode}: "
                                f"{before} -> {now} MB/s"
                            )
        if regressions:
            warnings.warn(
                "codec perf regression (soft, >"
                f"{SOFT_REGRESSION_RATIO}x vs committed baseline): "
                + "; ".join(regressions),
                stacklevel=1,
            )

    # The hard architectural gate rides with the artifact so a refresh can
    # never silently commit a de-vectorized kernel.
    assert kernels["crc32c_4KiB_speedup"] >= REQUIRED_KERNEL_SPEEDUP
    assert kernels["huffman_decode_4KiB_speedup"] >= REQUIRED_KERNEL_SPEEDUP

    # Graph presets register as ordinary codecs, so their one-shot and
    # streaming cells must appear in the matrix alongside the monoliths.
    graph_cells = [name for name in matrix if name.startswith("graph-")]
    assert len(graph_cells) >= 3, graph_cells


def _kernel_speedups():
    """Vectorized kernels vs the retained scalar reference loops at 4 KiB."""
    from repro.algorithms.huffman import (
        HuffmanTable,
        _decode_symbols_reader,
        byte_frequencies,
        decode_symbols,
        encode_symbols,
    )
    from repro.algorithms.lz77 import Lz77Encoder, Lz77Params
    from repro.common.crc32c import _update_scalar, crc32c

    size = SIZE_CLASSES["4KiB"]
    raw = _payload(size)

    crc_new = _mbps(lambda: crc32c(raw), size)
    crc_old = _mbps(lambda: _update_scalar(0xFFFFFFFF, raw), size)

    table = HuffmanTable.from_frequencies(byte_frequencies(raw))
    coded = encode_symbols(raw, table)
    assert decode_symbols(coded, size, table) == list(raw)
    huff_new = _mbps(lambda: decode_symbols(coded, size, table), size)
    huff_old = _mbps(lambda: _decode_symbols_reader(coded, size, table), size)

    encoder = Lz77Encoder(Lz77Params())
    lz77_mbps = _mbps(lambda: encoder.encode(raw), size)

    return {
        "crc32c_4KiB_mbps": round(crc_new, 3),
        "crc32c_4KiB_speedup": round(crc_new / crc_old, 2),
        "huffman_decode_4KiB_mbps": round(huff_new, 3),
        "huffman_decode_4KiB_speedup": round(huff_new / huff_old, 2),
        "lz77_encode_4KiB_mbps": round(lz77_mbps, 3),
    }


@pytest.mark.bench
def test_snappy_parse_elements_roundtrip():
    """The decompression DSE hot path still parses a 64 KiB frame correctly."""
    from repro.algorithms.snappy import parse_elements

    raw = _payload(64 * 1024)
    compressed = get_codec("snappy").compress(raw)
    expected, stream = parse_elements(compressed)
    assert expected == len(raw)
    assert stream is not None


@pytest.mark.bench
def test_zstd_analyze_frame_roundtrip():
    """The ZStd decompression DSE hot path still analyzes a 64 KiB frame."""
    from repro.algorithms.zstd_analyze import analyze_frame

    raw = _payload(64 * 1024)
    frame = get_codec("zstd").compress(raw)
    stats = analyze_frame(frame)
    assert stats.content_bytes == len(raw)
