"""Micro-benchmarks of the pure-Python codecs themselves.

These time the actual Python implementations (not the hardware model), so
pytest-benchmark's statistics are meaningful here. They exist to keep the
codec layer's performance visible — a 10x regression in the matcher makes
suite generation and DSE painful.
"""

import pytest

from repro.algorithms.registry import get_codec
from repro.corpus.sources import mixed_source

PAYLOAD = mixed_source(7, 64 * 1024)


@pytest.fixture(scope="module", params=["snappy", "zstd", "flate", "gipfeli", "lzo"])
def codec_name(request):
    return request.param


def test_compress_throughput(benchmark, codec_name):
    codec = get_codec(codec_name)
    compressed = benchmark(codec.compress, PAYLOAD)
    assert len(compressed) < len(PAYLOAD)


def test_decompress_throughput(benchmark, codec_name):
    codec = get_codec(codec_name)
    compressed = codec.compress(PAYLOAD)
    output = benchmark(codec.decompress, compressed)
    assert output == PAYLOAD


def test_snappy_parse_elements(benchmark):
    """The decompression DSE hot path: element-stream parsing."""
    from repro.algorithms.snappy import parse_elements

    compressed = get_codec("snappy").compress(PAYLOAD)
    expected, stream = benchmark(parse_elements, compressed)
    assert expected == len(PAYLOAD)


def test_zstd_analyze_frame(benchmark):
    """The ZStd decompression DSE hot path: frame analysis."""
    from repro.algorithms.zstd_analyze import analyze_frame

    frame = get_codec("zstd").compress(PAYLOAD)
    stats = benchmark(analyze_frame, frame)
    assert stats.content_bytes == len(PAYLOAD)
