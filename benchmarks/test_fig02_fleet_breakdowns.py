"""Figure 2a/2b/2c and the elided §3.3.4 cost-per-byte table."""

import pytest

from repro.algorithms.base import Operation
from repro.fleet import analysis as A


def test_fig02a_bytes_by_algorithm(benchmark, fleet_profile, results_dir):
    byte_shares = benchmark(A.bytes_by_algorithm, fleet_profile)
    assert sum(byte_shares.values()) == pytest.approx(100.0)
    assert A.lightweight_compress_byte_share(fleet_profile) == pytest.approx(0.64, abs=0.05)
    assert A.heavyweight_decompress_byte_share(fleet_profile) == pytest.approx(0.49, abs=0.05)
    reuse = A.decompression_reuse_factor(fleet_profile)
    assert reuse == pytest.approx(3.3, abs=0.45)
    lines = ["Figure 2a: % of fleet uncompressed bytes by algorithm/op"]
    for (algo, op), share in sorted(byte_shares.items(), key=lambda kv: -kv[1]):
        if share > 0.01:
            lines.append(f"  {op.short}-{algo:<8s} {share:5.1f}%")
    lines.append(f"  bytes decompressed per compressed byte: {reuse:.2f} (paper: 3.3)")
    (results_dir / "fig02a_bytes.txt").write_text("\n".join(lines) + "\n")


def test_fig02b_zstd_level_distribution(benchmark, fleet_profile, results_dir):
    dist = benchmark(A.zstd_level_distribution, fleet_profile)
    at3 = A.zstd_level_cdf_at(fleet_profile, 3)
    at5 = A.zstd_level_cdf_at(fleet_profile, 5)
    assert at3 == pytest.approx(0.88, abs=0.05)
    assert at5 == pytest.approx(0.95, abs=0.04)
    lines = ["Figure 2b: byte-weighted ZStd level distribution"]
    for level in sorted(dist):
        lines.append(f"  level {level:>3d}: {100 * dist[level]:6.2f}%")
    lines.append(f"  <=3: {100 * at3:.1f}% (paper 88%)   <=5: {100 * at5:.1f}% (paper 95%)")
    (results_dir / "fig02b_levels.txt").write_text("\n".join(lines) + "\n")


def test_fig02c_compression_ratios(benchmark, fleet_profile, results_dir):
    ratios = benchmark(A.compression_ratio_by_bin, fleet_profile)
    assert ratios["zstd_low"] / ratios["snappy"] == pytest.approx(1.46, rel=0.12)
    assert ratios["zstd_high"] / ratios["zstd_low"] == pytest.approx(1.35, rel=0.15)
    lines = ["Figure 2c: aggregate fleet compression ratios by algorithm/level bin"]
    for name, value in sorted(ratios.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<10s} {value:5.2f}x")
    (results_dir / "fig02c_ratios.txt").write_text("\n".join(lines) + "\n")


def test_sec334_cost_per_byte(benchmark, fleet_profile, results_dir):
    """The elided §3.3.4 plot: cycles/byte per algorithm/level bin."""
    costs = benchmark(A.cost_per_byte_by_bin, fleet_profile)
    low_vs_snappy = costs[("zstd_low", "compress")] / costs[("snappy", "compress")]
    high_vs_low = costs[("zstd_high", "compress")] / costs[("zstd_low", "compress")]
    decomp = costs[("zstd", "decompress")] / costs[("snappy", "decompress")]
    assert low_vs_snappy == pytest.approx(1.55, rel=0.1)
    assert high_vs_low == pytest.approx(2.39, rel=0.15)
    assert decomp == pytest.approx(1.63, rel=0.1)
    increase = A.migration_cycle_increase(fleet_profile)
    assert increase == pytest.approx(0.67, abs=0.12)
    lines = [
        "Section 3.3.4 cost-per-byte relations (measured vs paper)",
        f"  ZStd low vs Snappy compression : {low_vs_snappy:.2f}x (paper 1.55x)",
        f"  ZStd high vs low compression   : {high_vs_low:.2f}x (paper 2.39x)",
        f"  ZStd vs Snappy decompression   : {decomp:.2f}x (paper 1.63x)",
        f"  25%-Snappy service -> high ZStd: +{100 * increase:.0f}% cycles (paper +67%)",
    ]
    (results_dir / "sec334_costs.txt").write_text("\n".join(lines) + "\n")
