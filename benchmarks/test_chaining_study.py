"""§3.5.2 accelerator-chaining scenario (extension experiment)."""

import pytest

from repro.chaining import RPC_LOG_SCHEMA, chaining_study, render_study, sample_records
from repro.soc.placement import Placement


def test_chaining_study(benchmark, results_dir):
    records = sample_records(seed=0, count=300)
    results = benchmark.pedantic(
        chaining_study, args=(RPC_LOG_SCHEMA, records), rounds=1, iterations=1
    )

    near = results[Placement.ROCC.value].total_cycles
    pcie = results[Placement.PCIE_NO_CACHE.value].total_cycles
    software = results["software"].total_cycles

    # §3.8 lesson 4: near-core chaining keeps the benefit; PCIe chaining pays
    # the offload overhead "multiple times".
    assert software / near > 5
    assert pcie / near > 3
    assert results[Placement.ROCC.value].transfer_cycles == 0.0

    (results_dir / "chaining_study.txt").write_text(render_study(results) + "\n")
