"""Figure 14 + the §6.4 speculation study: ZStd decompression DSE."""

import pytest

from conftest import save_figure
from repro.dse.experiments import fig14_zstd_decompression, speculation_study


def test_fig14(benchmark, dse_runner, results_dir):
    figure = benchmark.pedantic(
        fig14_zstd_decompression, args=(dse_runner,), rounds=1, iterations=1
    )
    save_figure(results_dir, figure)

    # Headline: 4.2x vs Xeon at 64K (§6.4).
    assert figure.speedup("RoCC", "64K") == pytest.approx(4.2, rel=0.1)
    # Entropy decoding attenuates the SRAM effect: only ~8.6% area swing.
    assert 1 - figure.area_normalized[-1] == pytest.approx(0.086, abs=0.01)


def test_fig14_speculation_sweep(benchmark, dse_runner, results_dir):
    points = benchmark.pedantic(speculation_study, args=(dse_runner,), rounds=1, iterations=1)
    by_width = {p.speculation: p for p in points}

    # §6.4: 2.11x / 4.2x / 5.64x at speculation 4 / 16 / 32;
    # -10% / +18% area relative to speculation 16.
    assert by_width[4].speedup == pytest.approx(2.11, rel=0.15)
    assert by_width[16].speedup == pytest.approx(4.2, rel=0.1)
    assert by_width[32].speedup == pytest.approx(5.64, rel=0.15)
    assert by_width[32].area_mm2 / by_width[16].area_mm2 == pytest.approx(1.18, abs=0.02)
    assert by_width[4].area_mm2 / by_width[16].area_mm2 == pytest.approx(0.90, abs=0.02)

    lines = ["Section 6.4 speculation study (64K history, RoCC)"]
    for width in (4, 16, 32):
        point = by_width[width]
        lines.append(
            f"  spec={width:<3d} speedup={point.speedup:5.2f}x area={point.area_mm2:.3f} mm^2"
        )
    (results_dir / "fig14_speculation.txt").write_text("\n".join(lines) + "\n")
