"""Wall-clock check of the observability layer's disabled-path cost.

Acceptance criterion for the obs layer: with observability *disabled*, an
instrumented codec round-trip must cost within 5% of calling the raw,
unwrapped implementation directly. The wrapper keeps the original function
as ``__wrapped__``, so both paths run the identical codec body — the only
difference is the instrumentation shim's flag check. Lives under
``benchmarks/`` (outside the default ``testpaths``) and carries the
``bench`` marker because it measures time, which the functional suite must
not depend on.
"""

import time

import pytest

from repro import obs
from repro.algorithms.registry import get_codec
from repro.corpus.sources import mixed_source

#: Allowed disabled-path slowdown of wrapped vs raw round-trips.
MAX_OVERHEAD_FRACTION = 0.05

PAYLOAD = mixed_source(11, 256 * 1024)
ROUNDS = 5


def _roundtrip_seconds(compress, decompress, codec) -> float:
    """Best-of-N timing of one compress+decompress pass (min filters noise)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        compressed = compress(codec, PAYLOAD)
        decompress(codec, compressed)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.bench
def test_disabled_instrumentation_overhead_under_5_percent():
    obs.disable()
    codec = get_codec("snappy")
    cls = type(codec)
    wrapped_c, wrapped_d = cls.compress, cls.decompress
    assert getattr(wrapped_c, "_obs_wrapped", False), "codec is not instrumented"
    raw_c, raw_d = wrapped_c.__wrapped__, wrapped_d.__wrapped__

    # Interleave-free warmup, then measure each path.
    _roundtrip_seconds(raw_c, raw_d, codec)
    raw = _roundtrip_seconds(raw_c, raw_d, codec)
    wrapped = _roundtrip_seconds(wrapped_c, wrapped_d, codec)

    overhead = wrapped / raw - 1.0
    assert overhead <= MAX_OVERHEAD_FRACTION, (
        f"disabled obs path too slow: raw={raw * 1e3:.2f}ms "
        f"wrapped={wrapped * 1e3:.2f}ms ({100 * overhead:.2f}% overhead)"
    )
