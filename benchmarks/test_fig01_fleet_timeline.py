"""Figure 1: fleet (de)compression cycle shares over time, by algorithm."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.fleet import timeline_shares
from repro.fleet.analysis import cycle_share_by_algorithm
from repro.fleet.distributions import CYCLE_SHARES


def test_fig01_timeline(benchmark, fleet_profile, results_dir):
    labels, shares = benchmark(timeline_shares)

    # Final slice reproduces the Figure 1 legend.
    measured = cycle_share_by_algorithm(fleet_profile)
    lines = ["Figure 1: fleet cycle shares, final slice (paper legend vs measured)"]
    for key, legend in sorted(CYCLE_SHARES.items(), key=lambda kv: -kv[1]):
        algo, op = key
        assert shares[key][-1] == pytest.approx(legend, abs=0.5)
        lines.append(
            f"  {op.short}-{algo:<8s} legend={legend:5.1f}%  sampled={measured[key]:5.1f}%"
        )

    # ZStd's 0% -> 10% first-year ramp (§3.4) is visible in the series.
    zstd = shares[("zstd", Operation.COMPRESS)] + shares[("zstd", Operation.DECOMPRESS)]
    last_zero = int(np.max(np.flatnonzero(zstd < 1e-9)))
    first_at_ten = int(np.argmax(zstd >= 10.0))
    assert 0 < first_at_ten - last_zero <= 5
    lines.append(f"  ZStd crossed 10% {first_at_ten - last_zero} slices after introduction")

    (results_dir / "fig01_timeline.txt").write_text("\n".join(lines) + "\n")
