"""Ablations over the entropy-stage CompileT parameters (§5.8, 10-12).

Covers the three generator knobs the main figures hold fixed: symbol-stat
collection bandwidth for the Huffman and FSE compressors, and the maximum
FSE table accuracy.
"""

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig


def test_ablation_stats_bandwidth(benchmark, dse_runner, results_dir):
    """Parameters 10-11: bytes/cycle of symbol-statistics collection.

    The dictionary-build pass is serial per block (two-pass compression), so
    halving the stats bandwidth must visibly slow ZStd compression while
    shrinking the collector's area.
    """

    def sweep():
        return {
            rate: dse_runner.evaluate(
                CdpuConfig(
                    huffman_stats_bytes_per_cycle=rate, fse_stats_bytes_per_cycle=rate
                ),
                "zstd",
                Operation.COMPRESS,
            )
            for rate in (2.0, 8.0, 16.0)
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert points[16.0].accel_seconds < points[2.0].accel_seconds
    assert points[16.0].area_mm2 > points[2.0].area_mm2
    # Ratio is untouched: this is a pure time/area knob.
    assert points[16.0].hw_ratio == pytest.approx(points[2.0].hw_ratio, rel=1e-9)
    lines = ["Ablation: symbol-stat collection bandwidth (ZStd compression)"]
    for rate, point in sorted(points.items()):
        lines.append(
            f"  {rate:4.0f} B/cyc  speedup={point.speedup:5.2f}x area={point.area_mm2:.3f} mm^2"
        )
    (results_dir / "ablation_stats_bandwidth.txt").write_text("\n".join(lines) + "\n")


def test_ablation_fse_accuracy_log(benchmark, dse_runner, results_dir):
    """Parameter 12: max FSE table accuracy.

    Larger tables code sequences closer to entropy (better ratio) but cost
    SRAM area and longer table builds.
    """

    def sweep():
        return {
            acc: dse_runner.evaluate(
                CdpuConfig(fse_max_accuracy_log=acc), "zstd", Operation.COMPRESS
            )
            for acc in (6, 9, 12)
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert points[12].hw_ratio >= points[6].hw_ratio * 0.999
    assert points[12].area_mm2 > points[6].area_mm2
    assert points[6].accel_seconds <= points[12].accel_seconds * 1.01
    lines = ["Ablation: FSE max accuracy log (ZStd compression)"]
    for acc, point in sorted(points.items()):
        lines.append(
            f"  accLog={acc:<3d} ratio={point.hw_ratio:.3f} area={point.area_mm2:.3f} mm^2 "
            f"speedup={point.speedup:5.2f}x"
        )
    (results_dir / "ablation_fse_accuracy.txt").write_text("\n".join(lines) + "\n")
