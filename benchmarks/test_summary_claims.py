"""Regenerate FINAL_TEXT_SUMMARIES: the paper's §6/abstract claims."""

import pytest

from repro.dse.summaries import final_text_summaries


def test_final_text_summaries(benchmark, dse_runner, results_dir):
    text = benchmark.pedantic(final_text_summaries, args=(dse_runner,), rounds=1, iterations=1)
    (results_dir / "FINAL_TEXT_SUMMARIES.txt").write_text(text + "\n")

    assert "Flagship speedups" in text
    assert "Figure 11" in text and "Figure 15" in text
    # The abstract's area-fraction claim must hold exactly (anchored model).
    assert "2.4%" in text and "4.7%" in text


def test_abstract_speedup_and_area_ranges(benchmark, dse_runner, results_dir):
    """Abstract: 'a 46x range in CDPU speedup, 3x range in silicon area'."""
    from repro.dse.experiments import all_figures

    figures = benchmark.pedantic(all_figures, args=(dse_runner,), rounds=1, iterations=1)
    speedups = [p.speedup for f in figures.values() for p in f.points]
    speedup_range = max(speedups) / min(speedups)
    assert speedup_range > 40

    per_pipeline_ranges = {}
    for name in ("fig11", "fig14"):
        areas = [p.area_mm2 for p in figures[name].points]
        per_pipeline_ranges[name] = max(areas) / min(areas)
    comp_areas = [p.area_mm2 for p in figures["fig12"].points] + [
        p.area_mm2 for p in figures["fig13"].points
    ]
    per_pipeline_ranges["fig12+13"] = max(comp_areas) / min(comp_areas)
    # The Snappy compressor spans ~3x in area across its sweeps.
    assert per_pipeline_ranges["fig12+13"] == pytest.approx(2.9, abs=0.4)

    lines = [
        "Abstract-level ranges (measured)",
        f"  speedup range across all design points: {speedup_range:.0f}x (paper: 46x)",
    ]
    for name, value in per_pipeline_ranges.items():
        lines.append(f"  single-pipeline area range [{name}]: {value:.2f}x")
    (results_dir / "summary_ranges.txt").write_text("\n".join(lines) + "\n")
