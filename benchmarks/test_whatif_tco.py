"""§3.3 resource-trade-off scenario: the paper's motivation, quantified."""

import pytest

from repro.fleet.whatif import migration_what_if


def test_whatif_migration(benchmark, fleet_profile, results_dir):
    report = benchmark(migration_what_if, fleet_profile)

    # §3.3's direction: the accelerated fleet compresses at the heavyweight
    # high-level ratio (~3.94x, Figure 2c) instead of its ~2.2x blend ...
    assert report.accelerated.aggregate_ratio == pytest.approx(3.94, rel=0.06)
    assert report.accelerated.aggregate_ratio > report.baseline.aggregate_ratio * 1.4
    # ... saving a large fraction of compressed-byte footprint and cycles.
    assert report.compressed_byte_reduction > 0.3
    assert report.cpu_cycle_reduction > 0.5

    lines = [report.render(), ""]
    for adoption in (0.25, 0.5, 1.0):
        partial = migration_what_if(fleet_profile, adoption=adoption)
        lines.append(
            f"adoption {100 * adoption:3.0f}%: bytes {-100 * partial.compressed_byte_reduction:+.1f}%, "
            f"cycles {-100 * partial.cpu_cycle_reduction:+.1f}%, "
            f"cost {-100 * partial.cost_reduction:+.1f}%"
        )
    (results_dir / "whatif_tco.txt").write_text("\n".join(lines) + "\n")


def test_related_work_positioning(benchmark, dse_runner, results_dir):
    """§7: comparison against IBM NXU and Microsoft Zipline/Corsica."""
    from repro.core.complex import build_comparison

    comparison = benchmark.pedantic(build_comparison, args=(dse_runner,), rounds=1, iterations=1)
    assert comparison.comparable_to_nxu()
    (results_dir / "related_work.txt").write_text("\n".join(comparison.rows()) + "\n")
