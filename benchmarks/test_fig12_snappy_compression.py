"""Figure 12: Snappy compression DSE (2^14-entry hash table)."""

import pytest

from conftest import save_figure
from repro.dse.experiments import fig12_snappy_compression


def test_fig12(benchmark, dse_runner, results_dir):
    figure = benchmark.pedantic(
        fig12_snappy_compression, args=(dse_runner,), rounds=1, iterations=1
    )
    save_figure(results_dir, figure)

    # Headline: ~16x vs Xeon at 64K (§6.3).
    assert figure.speedup("RoCC", "64K") == pytest.approx(16.3, rel=0.12)
    # Hardware beats software ratio at 64K (no skipping heuristic, §6.3).
    assert figure.ratio_vs_sw[0] >= 0.998
    # Ratio decays to roughly -5..-8% at 2K while area drops 20% (§6.3).
    assert 0.90 <= figure.ratio_vs_sw[-1] <= 0.97
    assert 1 - figure.area_normalized[-1] == pytest.approx(0.20, abs=0.03)
    # Chiplet is nearly free for compression (§6.3).
    assert figure.speedup("RoCC", "64K") / figure.speedup("Chiplet", "64K") < 1.05
    # Compression tolerates PCIe far better than decompression (§6.6/2).
    assert figure.speedup("PCIeNoCache", "64K") > 3.0
