"""Figure 3: cumulative call-size distributions for Snappy/ZStd x C/D."""

import pytest

from repro.algorithms.base import Operation
from repro.analysis.textplot import cdf_plot
from repro.fleet.analysis import call_size_cdf, median_call_size_bin


def test_fig03_call_size_cdfs(benchmark, fleet_profile, results_dir):
    def compute():
        return {
            (algo, op): call_size_cdf(fleet_profile, algo, op)
            for algo in ("snappy", "zstd")
            for op in Operation
        }

    cdfs = benchmark(compute)

    # §3.5.1 quantile checks.
    bins, snappy_c = cdfs[("snappy", Operation.COMPRESS)]
    _, zstd_c = cdfs[("zstd", Operation.COMPRESS)]
    _, snappy_d = cdfs[("snappy", Operation.DECOMPRESS)]
    assert snappy_c[bins.index(15)] == pytest.approx(0.24, abs=0.03)  # <=32 KiB
    assert zstd_c[bins.index(15)] == pytest.approx(0.08, abs=0.03)
    assert snappy_d[bins.index(17)] == pytest.approx(0.62, abs=0.04)  # <128 KiB
    assert snappy_d[bins.index(18)] == pytest.approx(0.80, abs=0.04)  # <256 KiB
    assert median_call_size_bin(fleet_profile, "zstd", Operation.DECOMPRESS) in (21, 22)

    plot = cdf_plot(
        bins,
        {f"{o.short}-{a}": cdf for (a, o), (bins_, cdf) in cdfs.items()},
        title="Figure 3: byte-weighted call-size CDFs (bins = ceil(log2 bytes))",
    )
    (results_dir / "fig03_call_sizes.txt").write_text(plot + "\n")
