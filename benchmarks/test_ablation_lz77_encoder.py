"""Ablations over the remaining LZ77-encoder CompileT parameters (§5.8).

The paper's figures sweep history size and hash-table entries; the generator
also exposes hash *function*, hash-table *contents*, and *associativity*
(parameters 6-8). These benches quantify those knobs on HyperCompressBench,
extending DESIGN.md's ablation list.
"""

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig


def _evaluate(dse_runner, **overrides):
    return dse_runner.evaluate(CdpuConfig(**overrides), "snappy", Operation.COMPRESS)


def test_ablation_hash_function(benchmark, dse_runner, results_dir):
    """Hash function choice (§5.8 parameter 8) moves ratio, not correctness."""

    def sweep():
        return {
            name: _evaluate(dse_runner, hash_function=name)
            for name in ("multiplicative", "zstd5", "xor_shift")
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = {name: p.hw_ratio for name, p in points.items()}
    # All hash functions must stay within a few percent of each other: the
    # knob trades logic complexity against marginal match quality.
    best, worst = max(ratios.values()), min(ratios.values())
    assert worst > 0.9 * best
    lines = ["Ablation: LZ77 hash function (Snappy compression suite)"]
    for name, point in points.items():
        lines.append(
            f"  {name:<15s} ratio={point.hw_ratio:.3f} speedup={point.speedup:5.2f}x"
        )
    (results_dir / "ablation_hash_function.txt").write_text("\n".join(lines) + "\n")


def test_ablation_associativity(benchmark, dse_runner, results_dir):
    """Associativity (§5.8 parameter 6): more ways -> better matches, more
    area, slightly more probe work."""

    def sweep():
        return {
            ways: _evaluate(dse_runner, hash_table_associativity=ways) for ways in (1, 2, 4)
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert points[4].hw_ratio >= points[1].hw_ratio * 0.999
    assert points[4].area_mm2 > points[1].area_mm2
    lines = ["Ablation: hash-table associativity (Snappy compression suite)"]
    for ways, point in points.items():
        lines.append(
            f"  ways={ways}  ratio={point.hw_ratio:.3f} area={point.area_mm2:.3f} mm^2 "
            f"speedup={point.speedup:5.2f}x"
        )
    (results_dir / "ablation_associativity.txt").write_text("\n".join(lines) + "\n")


def test_ablation_hash_table_contents(benchmark, dse_runner, results_dir):
    """Contents (§5.8 parameter 7): storing a tag filters false candidates
    before the history read, trading a wider table for fewer wasted probes."""

    def sweep():
        return {
            contents: _evaluate(
                dse_runner,
                hash_table_contents=contents,
                hash_table_entries=1 << 9,  # collisions make the tag matter
            )
            for contents in ("position", "position_and_tag")
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert points["position_and_tag"].accel_seconds <= points["position"].accel_seconds * 1.001
    assert points["position_and_tag"].hw_ratio == pytest.approx(
        points["position"].hw_ratio, rel=0.05
    )
    lines = ["Ablation: hash-table contents at 2^9 entries (Snappy compression)"]
    for contents, point in points.items():
        lines.append(
            f"  {contents:<17s} speedup={point.speedup:5.2f}x ratio={point.hw_ratio:.3f}"
        )
    (results_dir / "ablation_hash_contents.txt").write_text("\n".join(lines) + "\n")
