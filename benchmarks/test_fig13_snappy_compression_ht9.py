"""Figure 13: Snappy compression with a 2^9-entry hash table."""

import pytest

from conftest import save_figure
from repro.dse.experiments import fig12_snappy_compression, fig13_snappy_compression_small_ht


def test_fig13(benchmark, dse_runner, results_dir):
    figure = benchmark.pedantic(
        fig13_snappy_compression_small_ht, args=(dse_runner,), rounds=1, iterations=1
    )
    save_figure(results_dir, figure)

    # §6.3: 2^9 entries + 2K history = 34% of the full design's area ...
    assert figure.area_normalized[-1] == pytest.approx(0.34, abs=0.02)
    # ... with negligible speedup loss ...
    reference = fig12_snappy_compression(dse_runner)
    for label in figure.x_labels:
        assert figure.speedup("RoCC", label) > 0.85 * reference.speedup("RoCC", label)
    # ... and only ~3% extra compression-ratio loss at 2K.
    extra_loss = reference.ratio_vs_sw[-1] - figure.ratio_vs_sw[-1]
    assert 0.0 < extra_loss < 0.09
