"""Figure 4: (de)compression cycles by calling library."""

import pytest

from repro.analysis.textplot import bar_chart
from repro.fleet.analysis import caller_breakdown, file_format_cycle_share
from repro.fleet.distributions import CALLER_SHARES


def test_fig04_caller_breakdown(benchmark, fleet_profile, results_dir):
    breakdown = benchmark(caller_breakdown, fleet_profile)
    for caller, expected in CALLER_SHARES.items():
        assert breakdown[caller] == pytest.approx(expected, abs=1.5), caller
    assert file_format_cycle_share(fleet_profile) == pytest.approx(0.492, abs=0.03)

    ordered = sorted(breakdown.items(), key=lambda kv: -kv[1])
    chart = bar_chart(
        [name for name, _ in ordered],
        [value for _, value in ordered],
        title="Figure 4: % of fleet (de)compression cycles by caller",
        unit="%",
    )
    chart += (
        f"\nfile-format callers total: {100 * file_format_cycle_share(fleet_profile):.1f}%"
        " (paper: 49.2%)\n"
    )
    (results_dir / "fig04_callers.txt").write_text(chart)
