"""Lint wall-clock baseline: cold vs warm cache, jobs 1 vs 4.

Emits ``results/BENCH_lint.json`` — the repo's first lint perf artifact —
so the performance trajectory of the analyzer is tracked the same way the
figure tables are. Two properties are asserted hard because they are
architectural, not machine-dependent:

* a warm content-hash cache must beat a cold run by a wide margin (the
  whole point of :mod:`repro.lint.cache`);
* every configuration must produce identical findings (jobs parity).

The comparison against the *committed* baseline is deliberately soft: CI
machines vary, so a slowdown beyond the allowed ratio emits a prominent
warning for the reviewer rather than failing the build. Lives under
``benchmarks/`` with the ``bench`` marker because it measures time.
"""

import json
import time
import warnings
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cache import LintCache

REQUIRED_WARM_SPEEDUP = 3.0
#: Soft gate: warn (don't fail) when cold lint is this much slower than the
#: committed baseline.
SOFT_REGRESSION_RATIO = 3.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BASELINE = _REPO_ROOT / "results" / "BENCH_lint.json"


def _timed_run(src: Path, *, jobs: int, cache: LintCache):
    start = time.perf_counter()
    result = run_lint([src], root=_REPO_ROOT, jobs=jobs, cache=cache)
    return result, time.perf_counter() - start


@pytest.mark.bench
def test_lint_cold_warm_jobs_matrix_and_baseline(tmp_path, results_dir):
    src = _REPO_ROOT / "src"
    timings = {}
    findings = {}
    for jobs in (1, 4):
        cache = LintCache(tmp_path / f"lint-cache-j{jobs}")
        result_cold, cold = _timed_run(src, jobs=jobs, cache=cache)
        result_warm, warm = _timed_run(src, jobs=jobs, cache=cache)
        timings[f"cold_jobs{jobs}_seconds"] = round(cold, 4)
        timings[f"warm_jobs{jobs}_seconds"] = round(warm, 4)
        findings[jobs] = [f.to_json() for f in result_cold.findings]
        assert [f.to_json() for f in result_warm.findings] == findings[jobs]
        assert cold >= REQUIRED_WARM_SPEEDUP * warm, (
            f"warm lint cache not fast enough at jobs={jobs}: "
            f"cold={cold:.3f}s warm={warm:.3f}s"
        )

    # Jobs parity: the parallel flow pass must not perturb findings.
    assert findings[1] == findings[4]

    payload = {
        "benchmark": "lint",
        "files": len(list(src.rglob("*.py"))),
        **timings,
    }
    previous = None
    if _BASELINE.exists():
        previous = json.loads(_BASELINE.read_text())
    (results_dir / "BENCH_lint.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    if previous is not None:
        for key in ("cold_jobs1_seconds", "cold_jobs4_seconds"):
            before, now = previous.get(key), payload[key]
            if before and now > SOFT_REGRESSION_RATIO * before:
                warnings.warn(
                    f"lint perf regression (soft): {key} was {before}s, "
                    f"now {now}s (> {SOFT_REGRESSION_RATIO}x)",
                    stacklevel=1,
                )
