"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure. Heavy artifacts (the
HyperCompressBench instance, the DSE runner, fleet samples) are session-
scoped; figure outputs are also written to ``results/`` as text tables and
CSV so a run leaves an inspectable artifact trail, like the paper's
``$HYPER_RESULTS`` directory.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.dse.cache import DseCache
from repro.dse.runner import DseRunner
from repro.fleet import generate_fleet_profile
from repro.hcbench import default_benchmark

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def fleet_profile():
    return generate_fleet_profile(seed=1, num_calls=120_000)


@pytest.fixture(scope="session")
def bench_suite():
    return default_benchmark()


@pytest.fixture(scope="session")
def dse_cache(results_dir) -> DseCache:
    """One persistent design-point store shared by every figure benchmark."""
    return DseCache(results_dir / ".dse-cache")


@pytest.fixture(scope="session")
def dse_runner(bench_suite, dse_cache):
    """DSE runner with the warm on-disk cache; REPRO_JOBS sets parallelism."""
    return DseRunner(bench_suite, cache=dse_cache)


def save_figure(results_dir: Path, figure) -> None:
    """Persist a FigureResult as both table text and CSV."""
    stem = figure.figure_id.lower().replace(" ", "")
    (results_dir / f"{stem}.txt").write_text(figure.to_table() + "\n")
    (results_dir / f"{stem}.csv").write_text(figure.to_csv())
