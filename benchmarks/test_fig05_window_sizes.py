"""Figure 5: ZStd window-size distributions in the fleet."""

import pytest

from repro.algorithms.base import Operation
from repro.analysis.textplot import cdf_plot
from repro.fleet.analysis import window_size_cdf


def test_fig05_window_size_cdfs(benchmark, fleet_profile, results_dir):
    def compute():
        return {op: window_size_cdf(fleet_profile, op) for op in Operation}

    cdfs = benchmark(compute)
    bins, comp = cdfs[Operation.COMPRESS]
    _, decomp = cdfs[Operation.DECOMPRESS]

    # §3.6: >50% of compressed bytes at <=32 KiB windows; decompression
    # median 1 MiB; tails reach 16 MiB.
    assert comp[bins.index(15)] > 0.5
    assert decomp[bins.index(19)] < 0.5 <= decomp[bins.index(20)] + 0.05
    assert comp[bins.index(23)] < 1.0

    # The z15 takeaway: a 32 KiB on-chip window misses ~half of fleet
    # compression calls (§3.6).
    missed = 1.0 - comp[bins.index(15)]
    assert missed == pytest.approx(0.48, abs=0.09)

    plot = cdf_plot(
        bins,
        {"C-window": comp, "D-window": decomp},
        title="Figure 5: ZStd window-size CDFs (bins = log2 bytes)",
    )
    plot += f"\ncompression calls beyond a 32 KiB window: {100 * missed:.0f}% (z15 cannot serve them)\n"
    (results_dir / "fig05_windows.txt").write_text(plot)
