"""Figure 11: Snappy decompression DSE (placements x history SRAM)."""

import pytest

from conftest import save_figure
from repro.dse.experiments import fig11_snappy_decompression


def test_fig11(benchmark, dse_runner, results_dir):
    figure = benchmark.pedantic(
        fig11_snappy_decompression, args=(dse_runner,), rounds=1, iterations=1
    )
    save_figure(results_dir, figure)

    # Headline: >10x vs Xeon at 64K near-core (§6.2).
    assert figure.speedup("RoCC", "64K") == pytest.approx(10.4, rel=0.12)
    # 38% area saving for a small speedup cost at 2K (§6.2).
    assert 1 - figure.area_normalized[-1] == pytest.approx(0.38, abs=0.02)
    assert figure.speedup("RoCC", "2K") > 0.9 * figure.speedup("RoCC", "64K")
    # PCIe pays ~5.6x vs near-core (§6.2).
    assert figure.speedup("RoCC", "64K") / figure.speedup("PCIeNoCache", "64K") == pytest.approx(
        5.6, rel=0.25
    )
    # Chiplet is an attractive middle ground at 64K but collapses at 2K.
    assert figure.speedup("Chiplet", "64K") > 0.85 * figure.speedup("RoCC", "64K")
    assert figure.speedup("Chiplet", "2K") < figure.speedup("PCIeLocalCache", "64K")
