"""Figure 6: call sizes in popular open-source compression benchmarks."""

import pytest

from repro.analysis.textplot import cdf_plot
from repro.hcbench.validation import (
    median_bin_gap_vs_fleet,
    opensource_call_size_cdf,
    opensource_median_bin,
)


def test_fig06_opensource_call_sizes(benchmark, fleet_profile, results_dir):
    bins, cdf = benchmark(opensource_call_size_cdf)
    assert cdf[-1] == pytest.approx(1.0)

    # §3.7: "the median call sizes of the distributions differ by an
    # astounding 256x" (8 log2 bins).
    gap = median_bin_gap_vs_fleet(fleet_profile)
    assert 7 <= gap <= 9

    plot = cdf_plot(
        bins,
        {"open-src": cdf},
        title="Figure 6: open-source benchmark call-size CDF (byte-weighted)",
    )
    plot += (
        f"\nopen-source median bin: {opensource_median_bin()} "
        f"(~{2 ** opensource_median_bin() // (1 << 20)} MiB); "
        f"gap vs fleet median: {gap} bins (~{2 ** gap}x; paper: 256x)\n"
    )
    (results_dir / "fig06_opensource.txt").write_text(plot)
