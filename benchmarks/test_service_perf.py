"""Serving-tier wall-clock baseline: goodput and latency per codec/size.

Emits ``results/BENCH_service.json`` so the serving layer's performance
trajectory is tracked alongside the lint analyzer's (``BENCH_lint.json``).
Each cell drives one :class:`~repro.service.CompressionService` with a
closed burst of fixed-size compress round-trips and records goodput plus
p50/p99 sojourn.

One property is asserted hard because it is architectural: batched dispatch
must not *lose* goodput versus unbatched on the same burst beyond noise —
coalescing exists to amortize pool round-trips.

The comparison against the *committed* baseline is deliberately soft: CI
machines vary, so a goodput drop beyond the allowed ratio emits a prominent
warning for the reviewer rather than failing the build.
"""

from __future__ import annotations

import asyncio
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.service import CompressionService, ServiceConfig
from repro.service.harness import synthesize_payload

#: Soft gate: warn (don't fail) when a cell's goodput falls below
#: baseline / SOFT_REGRESSION_RATIO.
SOFT_REGRESSION_RATIO = 3.0
#: Batching may not lose more than this factor vs unbatched dispatch.
MAX_BATCHING_LOSS = 2.0

CALLS_PER_CELL = 24
CODECS = ("snappy", "zstd")
SIZES = (256, 4096)

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BASELINE = _REPO_ROOT / "results" / "BENCH_service.json"

TIMEOUT_SECONDS = 300.0


def _burst(codec: str, size: int, *, batching: bool) -> dict:
    """Serve a closed burst of compress calls; return the cell's metrics."""
    payload = synthesize_payload(0, codec, size)
    config = ServiceConfig(
        workers=1, max_batch=8, batching=batching, max_queue_depth=10_000
    )

    async def _main():
        async with CompressionService(config) as service:
            loop = asyncio.get_running_loop()
            begin = loop.time()
            responses = await asyncio.wait_for(
                asyncio.gather(
                    *[
                        service.submit(
                            service.make_request(codec, Operation.COMPRESS, payload)
                        )
                        for _ in range(CALLS_PER_CELL)
                    ]
                ),
                TIMEOUT_SECONDS,
            )
            makespan = loop.time() - begin
            return responses, makespan

    responses, makespan = asyncio.run(_main())
    assert all(r.ok for r in responses)
    sojourns = np.array([r.sojourn_seconds for r in responses])
    return {
        "goodput_bytes_per_second": round(
            CALLS_PER_CELL * size / max(makespan, 1e-12), 1
        ),
        "p50_sojourn_ms": round(float(np.percentile(sojourns, 50)) * 1e3, 4),
        "p99_sojourn_ms": round(float(np.percentile(sojourns, 99)) * 1e3, 4),
    }


@pytest.mark.bench
def test_service_goodput_matrix_and_baseline(results_dir):
    cells = {}
    for codec in CODECS:
        for size in SIZES:
            batched = _burst(codec, size, batching=True)
            unbatched = _burst(codec, size, batching=False)
            cells[f"{codec}_{size}B"] = batched
            # Architectural: coalescing must not collapse goodput.
            assert batched["goodput_bytes_per_second"] * MAX_BATCHING_LOSS >= (
                unbatched["goodput_bytes_per_second"]
            ), (
                f"batched dispatch lost goodput on {codec}/{size}B: "
                f"{batched['goodput_bytes_per_second']} vs "
                f"{unbatched['goodput_bytes_per_second']} B/s unbatched"
            )

    payload = {"benchmark": "service", "calls_per_cell": CALLS_PER_CELL, **cells}
    previous = None
    if _BASELINE.exists():
        previous = json.loads(_BASELINE.read_text())
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    if previous is not None:
        for cell, metrics in cells.items():
            before = (previous.get(cell) or {}).get("goodput_bytes_per_second")
            now = metrics["goodput_bytes_per_second"]
            if before and now * SOFT_REGRESSION_RATIO < before:
                warnings.warn(
                    f"service perf regression (soft): {cell} goodput was "
                    f"{before} B/s, now {now} B/s "
                    f"(> {SOFT_REGRESSION_RATIO}x slower)",
                    stacklevel=1,
                )
