"""Figure 15: ZStd compression DSE (2^14-entry hash table)."""

import pytest

from conftest import save_figure
from repro.dse.experiments import fig15_zstd_compression


def test_fig15(benchmark, dse_runner, results_dir):
    figure = benchmark.pedantic(
        fig15_zstd_compression, args=(dse_runner,), rounds=1, iterations=1
    )
    save_figure(results_dir, figure)

    # Headline: ~15.8x vs Xeon at 64K (§6.5).
    assert figure.speedup("RoCC", "64K") == pytest.approx(15.8, rel=0.12)
    # The greedy Snappy-configured LZ77 encoder trails software ratio (§6.5;
    # the paper reports 84% — see EXPERIMENTS.md for why our gap is smaller).
    assert figure.ratio_vs_sw[0] < 1.0
    assert figure.ratio_vs_sw[-1] < figure.ratio_vs_sw[0]
    # Compression stays placement-tolerant (§6.6 lesson 2).
    assert figure.speedup("PCIeNoCache", "64K") > 4.5
    assert figure.speedup("Chiplet", "64K") > 0.95 * figure.speedup("RoCC", "64K")
