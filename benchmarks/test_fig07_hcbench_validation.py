"""Figure 7: HyperCompressBench call-size distributions vs the fleet (§4.1)."""

import pytest

from repro.analysis.textplot import cdf_plot
from repro.fleet.analysis import call_size_cdf
from repro.hcbench.validation import suite_call_size_cdf, validate_call_sizes, validate_ratios


def test_fig07_hcbench_call_sizes(benchmark, bench_suite, fleet_profile, results_dir):
    deviations = benchmark(validate_call_sizes, bench_suite, fleet_profile)
    for key, ks in deviations.items():
        assert ks < 0.25, (key, ks)

    sections = ["Figure 7: HyperCompressBench vs fleet call-size CDFs"]
    for (algo, op), suite in bench_suite.suites.items():
        bins, suite_cdf = suite_call_size_cdf(suite, bench_suite.config.size_scale)
        _, fleet_cdf = call_size_cdf(fleet_profile, algo, op)
        sections.append(
            cdf_plot(
                bins,
                {"suite": suite_cdf, "fleet": fleet_cdf},
                title=f"{op.short}-{algo} (KS distance {deviations[(algo, op)]:.3f})",
            )
        )
    (results_dir / "fig07_hcbench.txt").write_text("\n\n".join(sections) + "\n")


def test_fig07_ratio_validation(benchmark, bench_suite, fleet_profile, results_dir):
    """§4.1's second check: achieved suite ratios vs fleet aggregates."""
    ratios = benchmark(validate_ratios, bench_suite, fleet_profile)
    lines = ["HyperCompressBench achieved compression ratios"]
    for algo, (achieved, implied, fleet) in ratios.items():
        assert achieved == pytest.approx(implied, rel=0.20)
        lines.append(
            f"  {algo:<7s} achieved={achieved:.2f} target-implied={implied:.2f} "
            f"fleet={fleet:.2f}"
        )
    (results_dir / "fig07_ratios.txt").write_text("\n".join(lines) + "\n")
