"""Wall-clock check of the persistent DSE cache: warm must beat cold >= 3x.

This is the acceptance criterion for the cache layer: a Figure 11-sized
sweep served from a warm ``results/.dse-cache`` store must cost at most a
third of the cold evaluation, while returning bit-identical results. Lives
under ``benchmarks/`` (outside the default ``testpaths``) and carries the
``bench`` marker because it measures time, which the functional suite must
not depend on.
"""

import time

import pytest

from repro.dse.cache import DseCache
from repro.dse.parallel import evaluate_points
from repro.dse.runner import DseRunner
from repro.dse.sweeps import decoder_points

REQUIRED_SPEEDUP = 3.0


@pytest.mark.bench
def test_warm_cache_at_least_3x_faster_than_cold(bench_suite, tmp_path):
    # A private runner + store: the shared session fixtures must not pre-warm
    # the timing baseline.
    runner = DseRunner(bench_suite)
    cache = DseCache(tmp_path / "dse-cache")
    points = decoder_points("snappy")

    start = time.perf_counter()
    cold = evaluate_points(runner, points, cache=cache)
    cold_seconds = time.perf_counter() - start
    assert cache.stores == len(points)

    # A fresh runner drops the in-process workload memos, so the warm pass
    # measures the disk cache, not Python-object reuse.
    rewarmed = DseRunner(bench_suite)
    start = time.perf_counter()
    warm = evaluate_points(rewarmed, points, cache=cache)
    warm_seconds = time.perf_counter() - start

    assert warm == cold
    assert cache.hits == len(points)
    assert cold_seconds >= REQUIRED_SPEEDUP * warm_seconds, (
        f"warm cache not fast enough: cold={cold_seconds:.3f}s "
        f"warm={warm_seconds:.3f}s ({cold_seconds / max(warm_seconds, 1e-9):.1f}x)"
    )
