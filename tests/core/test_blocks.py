"""Unit tests for the CDPU hardware block cycle models (§5.1-§5.7)."""

import pytest

from repro.algorithms.lz77 import Copy, Literal, TokenStream
from repro.core import calibration as cal
from repro.core.blocks.entropy import (
    FseCompressorBlock,
    FseExpanderBlock,
    HuffmanCompressorBlock,
    HuffmanExpanderBlock,
)
from repro.core.blocks.interface import CommandRouter, MemLoader, MemWriter, shared_port_cycles
from repro.core.blocks.lz77 import Lz77DecoderBlock, Lz77EncoderBlock
from repro.core.params import CdpuConfig
from repro.soc.memory import MemorySystem
from repro.soc.placement import Placement

ROCC = MemorySystem.for_placement(Placement.ROCC)
CHIPLET = MemorySystem.for_placement(Placement.CHIPLET)
PCIE = MemorySystem.for_placement(Placement.PCIE_NO_CACHE)


def stream_with_offsets(offsets, length=16):
    tokens = [Literal(b"x" * 64)]
    tokens += [Copy(offset=o, length=length) for o in offsets]
    return TokenStream(tokens, 64 + length * len(offsets))


class TestInterfaceBlocks:
    def test_memloader_linear(self):
        loader = MemLoader(ROCC)
        assert loader.stream_cycles(6400) == pytest.approx(2 * loader.stream_cycles(3200))

    def test_memwriter_equals_loader_rate(self):
        assert MemWriter(ROCC).stream_cycles(1024) == MemLoader(ROCC).stream_cycles(1024)

    def test_shared_port_sums_directions(self):
        assert shared_port_cycles(ROCC, 500, 700) == pytest.approx(
            MemLoader(ROCC).stream_cycles(1200)
        )

    def test_command_router_cost_by_placement(self):
        assert CommandRouter(PCIE).dispatch_cycles() > 10 * CommandRouter(ROCC).dispatch_cycles()


class TestLz77Decoder:
    def test_execute_cycles_scale_with_output(self):
        config = CdpuConfig()
        block = Lz77DecoderBlock(config, ROCC)
        small = block.execute_cycles(stream_with_offsets([100] * 10))
        large = block.execute_cycles(stream_with_offsets([100] * 100))
        assert large > small

    def test_fallbacks_only_beyond_sram(self):
        config = CdpuConfig(decoder_history_bytes=4096)
        block = Lz77DecoderBlock(config, ROCC)
        near = stream_with_offsets([1000, 2000, 4096])
        far = stream_with_offsets([5000, 9000])
        assert block.fallback_requests(near) == 0
        assert block.fallback_requests(far) > 0

    def test_fallback_latency_hidden_near_core_but_not_pcie(self):
        """§6.2's placement asymmetry: L2 fallbacks are nearly free, PCIe
        fallbacks are catastrophic."""
        config = CdpuConfig(decoder_history_bytes=2048)
        stream = stream_with_offsets([30_000] * 50)
        near = Lz77DecoderBlock(config, ROCC).fallback_cycles(stream)
        chiplet = Lz77DecoderBlock(config, CHIPLET).fallback_cycles(stream)
        pcie = Lz77DecoderBlock(config, PCIE).fallback_cycles(stream)
        assert near < chiplet / 10
        assert chiplet < pcie

    def test_fallback_traffic_counted(self):
        config = CdpuConfig(decoder_history_bytes=2048)
        block = Lz77DecoderBlock(config, ROCC)
        stream = stream_with_offsets([30_000] * 10)
        assert block.fallback_traffic_bytes(stream) >= 10 * cal.BEAT_BYTES

    def test_memory_tiers_price_distant_history(self):
        """§3.6: history beyond the L2's capacity falls back to LLC/DRAM,
        so very distant offsets stall more than just-off-SRAM ones."""
        config = CdpuConfig(decoder_history_bytes=2048)
        block = Lz77DecoderBlock(config, ROCC)
        near = stream_with_offsets([100_000] * 20)  # L2-resident history
        llc = stream_with_offsets([3 << 20] * 20)  # past L2 capacity
        dram = stream_with_offsets([12 << 20] * 20)  # past LLC capacity
        assert block.fallback_cycles(near) < block.fallback_cycles(llc)
        assert block.fallback_cycles(llc) < block.fallback_cycles(dram)

    def test_card_cache_flattens_tiers_for_pcie_local(self):
        from repro.soc.placement import Placement

        config = CdpuConfig(decoder_history_bytes=2048)
        local = Lz77DecoderBlock(config, MemorySystem.for_placement(Placement.PCIE_LOCAL_CACHE))
        near = stream_with_offsets([100_000] * 20)
        dram = stream_with_offsets([12 << 20] * 20)
        assert local.fallback_cycles(near) == pytest.approx(
            local.fallback_cycles(dram), rel=0.25
        )


class TestLz77Encoder:
    def test_tokenize_respects_sram_window(self):
        config = CdpuConfig(encoder_history_bytes=2048)
        data = (b"pattern-far-away" * 300)[:4000] + b"pattern-far-away"
        tokens, _ = Lz77EncoderBlock(config).tokenize(data)
        assert all(c.offset <= 2048 for c in tokens.tokens if isinstance(c, Copy))

    def test_match_cycles_scale_with_input(self):
        config = CdpuConfig()
        block = Lz77EncoderBlock(config)
        data = b"abcd" * 2000
        tokens, stats = block.tokenize(data)
        cycles = block.match_cycles(len(data), tokens, stats)
        assert cycles >= len(data) / cal.LZ77_MATCH_POSITIONS_PER_CYCLE

    def test_tag_contents_cheaper_on_collisions(self):
        data = bytes((i * 37 + (i >> 5)) & 0xFF for i in range(20000))
        plain_cfg = CdpuConfig(hash_table_entries=1 << 9, hash_table_contents="position")
        tag_cfg = CdpuConfig(hash_table_entries=1 << 9, hash_table_contents="position_and_tag")
        plain_block = Lz77EncoderBlock(plain_cfg)
        tag_block = Lz77EncoderBlock(tag_cfg)
        pt, ps = plain_block.tokenize(data)
        tt, ts = tag_block.tokenize(data)
        assert tag_block.match_cycles(len(data), tt, ts) <= plain_block.match_cycles(
            len(data), pt, ps
        )

    def test_emit_cycles_scale_with_output(self):
        block = Lz77EncoderBlock(CdpuConfig())
        assert block.emit_cycles(2000) == pytest.approx(2 * block.emit_cycles(1000))


class TestHuffmanBlocks:
    def test_speculation_sqrt_scaling(self):
        """The decode-rate law behind §6.4's 2.11x/4.2x/5.64x sweep."""
        rate4 = HuffmanExpanderBlock(CdpuConfig(huffman_speculation=4)).symbols_per_cycle()
        rate16 = HuffmanExpanderBlock(CdpuConfig(huffman_speculation=16)).symbols_per_cycle()
        rate64 = HuffmanExpanderBlock(CdpuConfig(huffman_speculation=64)).symbols_per_cycle()
        assert rate16 == pytest.approx(2 * rate4)
        assert rate64 == pytest.approx(2 * rate16)

    def test_table_build_serial_cost(self):
        block = HuffmanExpanderBlock(CdpuConfig())
        assert block.table_build_cycles(2) == pytest.approx(2 * block.table_build_cycles(1))

    def test_compressor_stats_bandwidth_knob(self):
        fast = HuffmanCompressorBlock(CdpuConfig(huffman_stats_bytes_per_cycle=16.0))
        slow = HuffmanCompressorBlock(CdpuConfig(huffman_stats_bytes_per_cycle=2.0))
        assert fast.stats_cycles(4096) < slow.stats_cycles(4096)


class TestFseBlocks:
    def test_expander_rate(self):
        block = FseExpanderBlock(CdpuConfig())
        assert block.decode_cycles(500) == pytest.approx(500 / cal.FSE_SEQUENCES_PER_CYCLE)

    def test_table_build_bounded_by_max_accuracy(self):
        narrow = FseExpanderBlock(CdpuConfig(fse_max_accuracy_log=6))
        wide = FseExpanderBlock(CdpuConfig(fse_max_accuracy_log=12))
        assert narrow.table_build_cycles(3, 12) < wide.table_build_cycles(3, 12)

    def test_compressor_three_builders(self):
        block = FseCompressorBlock(CdpuConfig())
        assert block.stats_cycles(100) == pytest.approx(
            3 * 100 / cal.DEFAULT_STATS_BYTES_PER_CYCLE
        )
