"""Unit tests for the calibrated silicon-area model (§6)."""

import pytest

from repro.algorithms.base import Operation
from repro.core import calibration as cal
from repro.core.area import (
    fraction_of_xeon_core,
    hash_table_area_mm2,
    huffman_expander_area_mm2,
    pipeline_area_mm2,
    snappy_compressor_area_mm2,
    snappy_decompressor_area_mm2,
    sram_area_mm2,
    zstd_compressor_area_mm2,
    zstd_decompressor_area_mm2,
)
from repro.core.params import CdpuConfig

FLAGSHIP = CdpuConfig()


class TestPublishedAnchors:
    """The four absolute mm^2 numbers from §6 must be hit exactly."""

    def test_snappy_decompressor_431(self):
        assert snappy_decompressor_area_mm2(FLAGSHIP) == pytest.approx(0.431, abs=0.001)

    def test_snappy_compressor_851(self):
        assert snappy_compressor_area_mm2(FLAGSHIP) == pytest.approx(0.851, abs=0.001)

    def test_zstd_decompressor_1_9(self):
        assert zstd_decompressor_area_mm2(FLAGSHIP) == pytest.approx(1.9, abs=0.01)

    def test_zstd_compressor_3_48(self):
        assert zstd_compressor_area_mm2(FLAGSHIP) == pytest.approx(3.48, abs=0.01)

    def test_xeon_fraction_claims(self):
        """Abstract: 'as little as 2.4% to 4.7%' of a Xeon core."""
        assert fraction_of_xeon_core(snappy_decompressor_area_mm2(FLAGSHIP)) == pytest.approx(
            0.024, abs=0.001
        )
        assert fraction_of_xeon_core(snappy_compressor_area_mm2(FLAGSHIP)) == pytest.approx(
            0.047, abs=0.002
        )


class TestPublishedDeltas:
    def test_snappy_decomp_2k_saves_38_percent(self):
        small = FLAGSHIP.with_(decoder_history_bytes=2048)
        saving = 1 - snappy_decompressor_area_mm2(small) / snappy_decompressor_area_mm2(FLAGSHIP)
        assert saving == pytest.approx(0.38, abs=0.01)

    def test_snappy_comp_2k_saves_20_percent(self):
        small = FLAGSHIP.with_(encoder_history_bytes=2048)
        saving = 1 - snappy_compressor_area_mm2(small) / snappy_compressor_area_mm2(FLAGSHIP)
        assert saving == pytest.approx(0.20, abs=0.015)

    def test_snappy_comp_2k_ht9_is_34_percent_of_full(self):
        tiny = FLAGSHIP.with_(encoder_history_bytes=2048, hash_table_entries=1 << 9)
        fraction = snappy_compressor_area_mm2(tiny) / snappy_compressor_area_mm2(FLAGSHIP)
        assert fraction == pytest.approx(0.34, abs=0.015)

    def test_zstd_decomp_2k_saves_only_8_6_percent(self):
        small = FLAGSHIP.with_(decoder_history_bytes=2048)
        saving = 1 - zstd_decompressor_area_mm2(small) / zstd_decompressor_area_mm2(FLAGSHIP)
        assert saving == pytest.approx(0.086, abs=0.005)

    def test_speculation_32_adds_18_percent(self):
        wide = FLAGSHIP.with_(huffman_speculation=32)
        premium = zstd_decompressor_area_mm2(wide) / zstd_decompressor_area_mm2(FLAGSHIP) - 1
        assert premium == pytest.approx(0.18, abs=0.01)

    def test_speculation_4_saves_10_percent(self):
        narrow = FLAGSHIP.with_(huffman_speculation=4)
        saving = 1 - zstd_decompressor_area_mm2(narrow) / zstd_decompressor_area_mm2(FLAGSHIP)
        assert saving == pytest.approx(0.10, abs=0.012)

    def test_spec_4_to_32_cost_is_31_percent(self):
        """§6.6 lesson 4: 31% area between speculation 4 and 32."""
        narrow = zstd_decompressor_area_mm2(FLAGSHIP.with_(huffman_speculation=4))
        wide = zstd_decompressor_area_mm2(FLAGSHIP.with_(huffman_speculation=32))
        assert wide / narrow - 1 == pytest.approx(0.31, abs=0.02)


class TestComponents:
    def test_sram_linear(self):
        assert sram_area_mm2(2048) == pytest.approx(2 * cal.SRAM_MM2_PER_KIB)

    def test_hash_table_scales_with_ways(self):
        assert hash_table_area_mm2(1 << 10, 2) == pytest.approx(
            2 * hash_table_area_mm2(1 << 10, 1)
        )

    def test_huffman_superlinear(self):
        assert huffman_expander_area_mm2(32) > 2 * huffman_expander_area_mm2(16)

    def test_pipeline_dispatch(self):
        for algo in ("snappy", "zstd"):
            for op in Operation:
                assert pipeline_area_mm2(algo, op, FLAGSHIP) > 0

    def test_unknown_pipeline_raises(self):
        with pytest.raises(KeyError):
            pipeline_area_mm2("brotli", Operation.COMPRESS, FLAGSHIP)

    def test_monotone_in_history(self):
        areas = [
            pipeline_area_mm2("snappy", Operation.DECOMPRESS, FLAGSHIP.with_(decoder_history_bytes=s))
            for s in (2048, 8192, 65536)
        ]
        assert areas[0] < areas[1] < areas[2]

    def test_accuracy_log_knob_changes_zstd_areas(self):
        low = FLAGSHIP.with_(fse_max_accuracy_log=6)
        high = FLAGSHIP.with_(fse_max_accuracy_log=12)
        assert zstd_decompressor_area_mm2(low) < zstd_decompressor_area_mm2(high)
        assert zstd_compressor_area_mm2(low) < zstd_compressor_area_mm2(high)

    def test_stats_bandwidth_knob_changes_compressor_area(self):
        slow = FLAGSHIP.with_(huffman_stats_bytes_per_cycle=2.0)
        fast = FLAGSHIP.with_(huffman_stats_bytes_per_cycle=16.0)
        assert zstd_compressor_area_mm2(slow) < zstd_compressor_area_mm2(fast)
