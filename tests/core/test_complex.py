"""Unit tests for multi-pipeline complexes + related-work comparison (§7)."""

import pytest

from repro.algorithms.base import Operation
from repro.core.complex import (
    NXU_AREA_MM2,
    CdpuComplex,
    build_comparison,
)
from repro.core.params import CdpuConfig


class TestComplexArea:
    def test_snappy_both_directions_is_1_3_mm2(self):
        """§7: 'our design consuming around 1.3 mm^2 (Snappy)'."""
        complex_ = CdpuComplex(CdpuConfig())
        assert complex_.area_by_algorithm()["snappy"] == pytest.approx(1.28, abs=0.03)

    def test_zstd_both_directions_near_5_7_mm2(self):
        """§7: '... or 5.7 mm^2 (ZStd)' — ours lands slightly below because
        the paper's figure includes integration overhead."""
        complex_ = CdpuComplex(CdpuConfig())
        assert complex_.area_by_algorithm()["zstd"] == pytest.approx(5.4, abs=0.3)

    def test_total_is_sum_of_lanes(self):
        complex_ = CdpuComplex(CdpuConfig())
        assert complex_.area_mm2() == pytest.approx(
            sum(complex_.area_by_algorithm().values())
        )

    def test_lane_scaling(self):
        base = CdpuComplex(CdpuConfig())
        doubled = base.with_lane_counts(2)
        assert doubled.area_mm2() == pytest.approx(2 * base.area_mm2())

    def test_bad_lane_count_rejected(self):
        with pytest.raises(ValueError):
            CdpuComplex(CdpuConfig()).with_lane_counts(0)


class TestRelatedWork:
    def test_comparison_report(self, dse_runner):
        comparison = build_comparison(dse_runner)
        rows = comparison.rows()
        assert any("NXU" in r for r in rows)
        assert any("Zipline" in r for r in rows)

    def test_comparable_to_nxu(self, dse_runner):
        """§7: 'Our results ... are comparable, given our RISC-V SoC's weaker
        memory system and algorithmic differences.'"""
        comparison = build_comparison(dse_runner)
        assert comparison.comparable_to_nxu()
        # Snappy decompression should exceed the NXU projection band's top,
        # as in the paper (11.4 vs 7.7 GB/s).
        assert comparison.our_gbps[("snappy", Operation.DECOMPRESS)] > 7.7

    def test_nxu_area_same_order_as_zstd_complex(self):
        complex_area = CdpuComplex(CdpuConfig()).area_by_algorithm()["zstd"]
        assert 0.5 < complex_area / NXU_AREA_MM2 < 2.5
