"""Unit tests for the CDPU configuration surface (§5.8)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.params import CdpuConfig, ParamKind
from repro.soc.placement import Placement


class TestDefaults:
    def test_flagship_defaults(self):
        config = CdpuConfig()
        assert config.placement is Placement.ROCC
        assert config.decoder_history_bytes == 64 * 1024
        assert config.hash_table_entries == 1 << 14
        assert config.huffman_speculation == 16
        assert config.algorithms == {"snappy", "zstd"}

    def test_label(self):
        assert CdpuConfig().label() == "64K14HT-spec16-RoCC"
        small = CdpuConfig(encoder_history_bytes=2048, hash_table_entries=1 << 9)
        assert small.label().startswith("2K9HT")


class TestValidation:
    def test_empty_algorithms_rejected(self):
        with pytest.raises(ConfigError):
            CdpuConfig(algorithms=frozenset())

    def test_unsupported_algorithm_rejected(self):
        with pytest.raises(ConfigError, match="Snappy and ZStd"):
            CdpuConfig(algorithms=frozenset({"brotli"}))

    @pytest.mark.parametrize("field", ["decoder_history_bytes", "encoder_history_bytes"])
    def test_history_bounds(self, field):
        with pytest.raises(ConfigError):
            CdpuConfig(**{field: 512})
        with pytest.raises(ConfigError):
            CdpuConfig(**{field: 4 << 20})
        with pytest.raises(ConfigError):
            CdpuConfig(**{field: 3000})  # not a power of two

    def test_speculation_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            CdpuConfig(huffman_speculation=12)
        with pytest.raises(ConfigError):
            CdpuConfig(huffman_speculation=128)

    def test_accuracy_log_bounds(self):
        with pytest.raises(ConfigError):
            CdpuConfig(fse_max_accuracy_log=13)
        CdpuConfig(fse_max_accuracy_log=12)

    def test_stats_bandwidth_positive(self):
        with pytest.raises(ConfigError):
            CdpuConfig(huffman_stats_bytes_per_cycle=0)

    def test_bad_hash_function(self):
        with pytest.raises(ConfigError):
            CdpuConfig(hash_function="crc32")

    def test_bad_contents(self):
        with pytest.raises(ConfigError):
            CdpuConfig(hash_table_contents="offsets")


class TestParameterKinds:
    """§5.8's RunT/CompileT classification must be queryable."""

    def test_placement_is_compile_time_only(self):
        config = CdpuConfig()
        assert "placement" in config.compile_time_parameters()
        assert "placement" not in config.runtime_parameters()

    def test_history_windows_are_both(self):
        config = CdpuConfig()
        assert "decoder_history_bytes" in config.runtime_parameters()
        assert "decoder_history_bytes" in config.compile_time_parameters()

    def test_speculation_is_compile_time(self):
        config = CdpuConfig()
        assert "huffman_speculation" in config.compile_time_parameters()
        assert "huffman_speculation" not in config.runtime_parameters()

    def test_all_twelve_parameters_classified(self):
        config = CdpuConfig()
        union = set(config.runtime_parameters()) | set(config.compile_time_parameters())
        assert len(union) == 12


class TestDerived:
    def test_with_functional_update(self):
        base = CdpuConfig()
        variant = base.with_(placement=Placement.CHIPLET)
        assert variant.placement is Placement.CHIPLET
        assert base.placement is Placement.ROCC  # original untouched

    def test_encoder_lz77_params_mirror_config(self):
        config = CdpuConfig(
            encoder_history_bytes=8192,
            hash_table_entries=1 << 10,
            hash_table_associativity=2,
            hash_function="xor_shift",
        )
        params = config.encoder_lz77_params()
        assert params.window_size == 8192
        assert params.hash_table_entries == 1 << 10
        assert params.associativity == 2
        assert params.hash_function == "xor_shift"
        assert params.use_skipping is False  # §6.3: hardware never skips
        assert params.lazy is False  # §6.5: hardware is greedy
