"""Unit tests for the four CDPU pipelines: functional + cycle behaviour."""

import pytest

from repro.algorithms.base import Operation
from repro.algorithms.snappy import SnappyCodec
from repro.algorithms.zstd import ZstdCodec
from repro.core.generator import CdpuGenerator
from repro.core.params import CdpuConfig
from repro.core.pipelines.snappy import SnappyCompressorPipeline, SnappyDecompressorPipeline
from repro.core.pipelines.zstd import ZstdCompressorPipeline, ZstdDecompressorPipeline
from repro.soc.memory import MemorySystem
from repro.soc.placement import Placement

ROCC_MEM = MemorySystem.for_placement(Placement.ROCC)


def make(pipeline_cls, config=None, placement=Placement.ROCC):
    config = config or CdpuConfig()
    config = config.with_(placement=placement)
    return pipeline_cls(config, MemorySystem.for_placement(placement))


@pytest.fixture(scope="module")
def payloads(sample_inputs):
    return {k: v for k, v in sample_inputs.items() if v}


class TestSnappyDecompressor:
    def test_functional_verification(self, payloads):
        pipeline = make(SnappyDecompressorPipeline)
        codec = SnappyCodec()
        for name, data in payloads.items():
            result = pipeline.run(codec.compress(data), verify=True)
            assert result.output_bytes == len(data), name

    def test_corrupt_input_raises(self):
        from repro.common.errors import CorruptStreamError

        pipeline = make(SnappyDecompressorPipeline)
        with pytest.raises(CorruptStreamError):
            pipeline.run(b"\xff\xff\xff garbage")

    def test_placement_slows_calls(self, payloads):
        codec = SnappyCodec()
        stream = codec.compress(payloads["text"])
        near = make(SnappyDecompressorPipeline).run(stream)
        far = make(SnappyDecompressorPipeline, placement=Placement.PCIE_NO_CACHE).run(stream)
        assert far.cycles > 2 * near.cycles

    def test_small_sram_adds_fallback_cycles_on_chiplet(self):
        import random

        rng = random.Random(33)
        # Long-range structure: repeats at ~8 KiB distance force copy
        # offsets far beyond a 2 KiB history SRAM.
        block_a = bytes(rng.getrandbits(8) for _ in range(4096))
        block_b = bytes(rng.getrandbits(8) for _ in range(4096))
        data = (block_a + block_b) * 6
        stream = SnappyCodec().compress(data)
        big = make(
            SnappyDecompressorPipeline,
            CdpuConfig(decoder_history_bytes=64 * 1024),
            Placement.CHIPLET,
        ).run(stream)
        small = make(
            SnappyDecompressorPipeline,
            CdpuConfig(decoder_history_bytes=2048),
            Placement.CHIPLET,
        ).run(stream)
        assert small.cycles > big.cycles

    def test_throughput_in_plausible_range(self, payloads):
        result = make(SnappyDecompressorPipeline).run(SnappyCodec().compress(payloads["text"]))
        assert 1.0 < result.throughput_gbps < 40.0

    def test_requires_snappy_support(self):
        with pytest.raises(ValueError):
            make(SnappyDecompressorPipeline, CdpuConfig(algorithms=frozenset({"zstd"})))


class TestSnappyCompressor:
    def test_output_decodable_by_software(self, payloads):
        pipeline = make(SnappyCompressorPipeline)
        for name, data in payloads.items():
            pipeline.run(data, verify=True)  # verify asserts SW decodability

    def test_hw_ratio_at_64k_not_worse_than_sw(self, payloads):
        """§6.3: no skipping heuristic -> HW >= SW ratio on mixed data."""
        pipeline = make(SnappyCompressorPipeline)
        data = payloads["mixed"] * 4
        hw_size = pipeline.compressed_size(data)
        sw_size = len(SnappyCodec().compress(data))
        assert hw_size <= sw_size * 1.005

    def test_small_history_degrades_ratio(self, payloads):
        data = payloads["text"] * 8
        big = make(SnappyCompressorPipeline, CdpuConfig(encoder_history_bytes=64 * 1024))
        small = make(SnappyCompressorPipeline, CdpuConfig(encoder_history_bytes=1024))
        assert small.compressed_size(data) >= big.compressed_size(data)

    def test_small_hash_table_degrades_ratio(self, payloads):
        data = payloads["mixed"] * 4
        big = make(SnappyCompressorPipeline, CdpuConfig(hash_table_entries=1 << 14))
        small = make(SnappyCompressorPipeline, CdpuConfig(hash_table_entries=1 << 6))
        assert small.compressed_size(data) >= big.compressed_size(data)

    def test_compression_less_placement_sensitive_than_decompression(self, payloads):
        """§6.6 lesson 2."""
        data = payloads["text"] * 4
        comp_near = make(SnappyCompressorPipeline).run(data)
        comp_far = make(SnappyCompressorPipeline, placement=Placement.PCIE_NO_CACHE).run(data)
        stream = SnappyCodec().compress(data)
        dec_near = make(SnappyDecompressorPipeline).run(stream)
        dec_far = make(SnappyDecompressorPipeline, placement=Placement.PCIE_NO_CACHE).run(stream)
        comp_penalty = comp_far.cycles / comp_near.cycles
        dec_penalty = dec_far.cycles / dec_near.cycles
        assert comp_penalty < dec_penalty


class TestZstdDecompressor:
    def test_functional_verification(self, payloads):
        pipeline = make(ZstdDecompressorPipeline)
        codec = ZstdCodec()
        for name, data in payloads.items():
            result = pipeline.run(codec.compress(data), verify=True)
            assert result.output_bytes == len(data), name

    def test_more_speculation_is_faster_on_literal_heavy_data(self):
        import random

        rng = random.Random(21)
        data = bytes(rng.choice(b"abcdefghijklmnop") for _ in range(60_000))
        stream = ZstdCodec().compress(data)
        slow = make(ZstdDecompressorPipeline, CdpuConfig(huffman_speculation=4)).run(stream)
        fast = make(ZstdDecompressorPipeline, CdpuConfig(huffman_speculation=32)).run(stream)
        assert fast.cycles < slow.cycles

    def test_slower_than_snappy_decomp_per_byte(self, payloads):
        """§6.4: the entropy stages cost throughput vs the Snappy pipeline."""
        data = payloads["text"] * 4
        z = make(ZstdDecompressorPipeline).run(ZstdCodec().compress(data))
        s = make(SnappyDecompressorPipeline).run(SnappyCodec().compress(data))
        assert z.cycles > s.cycles


class TestZstdCompressor:
    def test_output_decodable_by_software(self, payloads):
        pipeline = make(ZstdCompressorPipeline)
        for name, data in payloads.items():
            pipeline.run(data, verify=True)

    def test_hw_ratio_at_most_software(self, payloads):
        """§6.5: greedy Snappy-configured matcher trails software levels."""
        data = payloads["text"] * 8
        hw = make(ZstdCompressorPipeline).compressed_size(data)
        sw = len(ZstdCodec().compress(data, level=3))
        assert hw >= sw * 0.98

    def test_entropy_stages_are_serial_cost(self, payloads):
        data = payloads["text"] * 4
        result = make(ZstdCompressorPipeline).run(data)
        assert "huffman-stats" in result.report.serial
        assert "fse-encoder" in result.report.serial


class TestCycleReports:
    def test_breakdown_totals(self, payloads):
        result = make(SnappyDecompressorPipeline).run(SnappyCodec().compress(payloads["text"]))
        report = result.report
        assert report.total_cycles == pytest.approx(
            max(report.pipelined.values()) + sum(report.serial.values())
        )
        assert report.bottleneck in report.pipelined

    def test_seconds_conversion(self, payloads):
        result = make(SnappyDecompressorPipeline).run(SnappyCodec().compress(payloads["text"]))
        assert result.seconds == pytest.approx(result.cycles / 2e9)


class TestGeneratorStructure:
    def test_generates_requested_pipelines(self):
        instance = CdpuGenerator().generate(CdpuConfig(algorithms=frozenset({"snappy"})))
        assert ("snappy", Operation.COMPRESS) in instance.pipelines
        assert ("zstd", Operation.COMPRESS) not in instance.pipelines
        with pytest.raises(KeyError):
            instance.pipeline("zstd", Operation.COMPRESS)

    def test_block_inventory_mirrors_figures_9_and_10(self):
        instance = CdpuGenerator().generate(CdpuConfig())
        zstd_decomp = instance.block_inventory("zstd", Operation.DECOMPRESS)
        assert "fse-table-builder" in zstd_decomp
        assert "huff-table-builder" in zstd_decomp
        snappy_decomp = instance.block_inventory("snappy", Operation.DECOMPRESS)
        assert "fse-table-builder" not in snappy_decomp
        # The LZ77 decoder blocks are shared between the two (§6.4).
        from repro.core.generator import SHARED_BLOCKS

        for block in SHARED_BLOCKS[Operation.DECOMPRESS]:
            assert block in zstd_decomp and block in snappy_decomp

    def test_zstd_compressor_has_seq_to_code(self):
        instance = CdpuGenerator().generate(CdpuConfig())
        assert "seq-to-code-converter" in instance.block_inventory("zstd", Operation.COMPRESS)

    def test_area_accessor(self):
        instance = CdpuGenerator().generate(CdpuConfig())
        assert instance.area_mm2("snappy", Operation.DECOMPRESS) == pytest.approx(0.431, abs=0.001)
