"""Consistency checks over the calibration constants and their derivations.

Every derived constant in :mod:`repro.core.calibration` claims a derivation
from published anchors; these tests re-execute the arithmetic so a future
edit cannot silently break an anchor.
"""

import pytest

from repro.algorithms.base import Operation
from repro.core import calibration as cal


class TestClocks:
    def test_cdpu_at_2ghz(self):
        assert cal.CDPU_CLOCK_HZ == 2.0e9

    def test_xeon_effective_between_base_and_turbo(self):
        assert cal.XEON_BASE_HZ < cal.XEON_CLOCK_HZ < cal.XEON_TURBO_HZ


class TestThroughputAnchors:
    def test_flagship_speedups_match_paper_ratios(self):
        """11.4/1.1, 5.84/0.36, 3.95/0.94, 3.5/0.22 (§6.2-§6.5)."""
        expected = {
            ("snappy", Operation.DECOMPRESS): 10.36,
            ("snappy", Operation.COMPRESS): 16.22,
            ("zstd", Operation.DECOMPRESS): 4.20,
            ("zstd", Operation.COMPRESS): 15.9,
        }
        for key, value in expected.items():
            assert cal.FLAGSHIP_SPEEDUP[key] == pytest.approx(value, rel=0.01)

    def test_decompressors_faster_than_compressors(self):
        assert cal.CDPU_FLAGSHIP_GBPS[("snappy", Operation.DECOMPRESS)] > cal.CDPU_FLAGSHIP_GBPS[
            ("snappy", Operation.COMPRESS)
        ]


class TestAreaDerivations:
    def test_sram_constant_reproduces_38_percent_claim(self):
        saving = 62.0 * cal.SRAM_MM2_PER_KIB / cal.AREA_SNAPPY_DECOMP_64K
        assert saving == pytest.approx(0.38, abs=0.003)

    def test_logic_constants_are_positive(self):
        for constant in (
            cal.SNAPPY_DECOMP_LOGIC_MM2,
            cal.SNAPPY_COMP_LOGIC_MM2,
            cal.ZSTD_DECOMP_LOGIC_MM2,
            cal.ZSTD_COMP_LOGIC_MM2,
        ):
            assert constant > 0

    def test_huffman_speculation_fit_reproduces_both_paper_deltas(self):
        up = cal.HUFF_SPEC_COEFF * (32**cal.HUFF_SPEC_EXPONENT - 16**cal.HUFF_SPEC_EXPONENT)
        down = cal.HUFF_SPEC_COEFF * (16**cal.HUFF_SPEC_EXPONENT - 4**cal.HUFF_SPEC_EXPONENT)
        assert up / cal.AREA_ZSTD_DECOMP_64K_SPEC16 == pytest.approx(0.18, abs=0.005)
        assert down / cal.AREA_ZSTD_DECOMP_64K_SPEC16 == pytest.approx(0.10, abs=0.012)

    def test_hash_entry_constant_reproduces_34_percent_claim(self):
        tiny = (
            cal.SNAPPY_COMP_LOGIC_MM2
            + 2 * cal.SRAM_MM2_PER_KIB
            + (1 << 9) * cal.HASH_ENTRY_MM2
        )
        assert tiny / cal.AREA_SNAPPY_COMP_64K_HT14 == pytest.approx(0.34, abs=0.01)


class TestLatencyInjections:
    def test_chiplet_is_25ns(self):
        assert cal.CHIPLET_EXTRA_CYCLES == pytest.approx(25e-9 * cal.CDPU_CLOCK_HZ)

    def test_pcie_is_200ns(self):
        assert cal.PCIE_EXTRA_CYCLES == pytest.approx(200e-9 * cal.CDPU_CLOCK_HZ)

    def test_memory_tiers_ordered(self):
        assert (
            cal.L2_LATENCY_CYCLES
            < cal.CARD_CACHE_LATENCY_CYCLES
            < cal.LLC_LATENCY_CYCLES
            < cal.DRAM_LATENCY_CYCLES
        )
        assert cal.L2_CAPACITY_BYTES < cal.LLC_CAPACITY_BYTES


class TestServiceRates:
    def test_huffman_rate_law_reproduces_speculation_ratios(self):
        """sqrt(S) scaling must give the paper's 2.11/4.2/5.64 shape when
        the Huffman stage dominates."""
        import math

        r4 = cal.HUFF_DECODE_RATE_COEFF * math.sqrt(4)
        r16 = cal.HUFF_DECODE_RATE_COEFF * math.sqrt(16)
        r32 = cal.HUFF_DECODE_RATE_COEFF * math.sqrt(32)
        assert r4 / r16 == pytest.approx(2.11 / 4.2, abs=0.02)
        assert r32 / r16 == pytest.approx(math.sqrt(2), rel=1e-9)

    def test_port_width_is_256_bits(self):
        assert cal.BEAT_BYTES == 32
        assert cal.PORT_BYTES_PER_CYCLE == 32.0
