"""Shared fixtures: expensive artifacts are built once per session.

The HyperCompressBench instance and the DSE runner are the costly pieces
(tens of seconds on a cold cache); both are session-scoped, and the benchmark
additionally persists to a disk cache across runs.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.dse.runner import DseRunner
from repro.fleet import generate_fleet_profile
from repro.hcbench import default_benchmark

# Hypothesis profiles: the default disables the per-example deadline (the
# pure-python codecs are slow enough that a 200 ms deadline flakes on loaded
# machines), while "ci" pins an explicit generous deadline and derandomizes
# so CI failures replay deterministically. Select with HYPOTHESIS_PROFILE.
settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci",
    deadline=2000,
    max_examples=25,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def _sample_inputs() -> dict:
    rng = random.Random(1234)
    text = (
        b"the quick brown fox jumps over the lazy dog; "
        b"pack my box with five dozen liquor jugs. " * 120
    )
    return {
        "empty": b"",
        "one": b"x",
        "tiny": b"abc",
        "repeat": b"ab" * 4000,
        "zeros": b"\x00" * 4096,
        "text": text,
        "random": bytes(rng.getrandbits(8) for _ in range(6000)),
        "low_entropy": bytes(rng.choice(b"abcd") for _ in range(5000)),
        "mixed": text[:2000] + bytes(rng.getrandbits(8) for _ in range(2000)) + text[:2000],
    }


@pytest.fixture(scope="session")
def sample_inputs() -> dict:
    """Named byte buffers spanning the compressibility spectrum."""
    return _sample_inputs()


@pytest.fixture(scope="session")
def fleet_profile():
    """A mid-sized fleet sample shared by the §3 analysis tests."""
    return generate_fleet_profile(seed=1, num_calls=120_000)


@pytest.fixture(scope="session")
def bench():
    """The default scaled HyperCompressBench (disk-cached)."""
    return default_benchmark()


@pytest.fixture(scope="session")
def dse_runner(bench):
    """One DSE runner shared by all experiment tests (memoizes workloads)."""
    return DseRunner(bench)


@pytest.fixture(scope="session")
def figures(dse_runner):
    """All five figure sweeps, computed once."""
    from repro.dse.experiments import all_figures

    return all_figures(dse_runner)
