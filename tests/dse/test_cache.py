"""Persistent DSE cache: keys, atomicity, eviction and corruption handling."""

import pickle

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig
from repro.dse.cache import CACHE_SCHEMA_VERSION, DseCache, runner_fingerprint
from repro.dse.parallel import evaluate_points
from repro.dse.runner import DesignPoint
from repro.soc.placement import Placement

POINT = DesignPoint("snappy", Operation.DECOMPRESS, CdpuConfig())


@pytest.fixture()
def cache(tmp_path) -> DseCache:
    return DseCache(tmp_path / "dse-cache")


class TestKeys:
    def test_stable_for_equal_points(self, cache):
        other = DesignPoint("snappy", Operation.DECOMPRESS, CdpuConfig())
        assert cache.key("fp", POINT) == cache.key("fp", other)

    def test_sensitive_to_every_coordinate(self, cache):
        base = cache.key("fp", POINT)
        variants = [
            DesignPoint("zstd", POINT.operation, POINT.config),
            DesignPoint(POINT.algorithm, Operation.COMPRESS, POINT.config),
            DesignPoint(
                POINT.algorithm,
                POINT.operation,
                CdpuConfig(placement=Placement.CHIPLET),
            ),
            DesignPoint(
                POINT.algorithm, POINT.operation, CdpuConfig(decoder_history_bytes=4096)
            ),
        ]
        keys = {cache.key("fp", v) for v in variants}
        assert base not in keys and len(keys) == len(variants)

    def test_sensitive_to_runner_fingerprint(self, cache):
        assert cache.key("fp-a", POINT) != cache.key("fp-b", POINT)

    def test_fingerprint_memoized_on_runner(self, dse_runner):
        first = runner_fingerprint(dse_runner)
        assert runner_fingerprint(dse_runner) == first
        assert dse_runner._cache_fingerprint == first


class TestEntryIO:
    def test_miss_on_empty_store(self, cache):
        assert cache.get("deadbeef") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_get_roundtrip(self, cache, dse_runner):
        result = dse_runner.evaluate_point(POINT)
        cache.put("k", result)
        assert cache.get("k") == result
        assert cache.stores == 1 and cache.hits == 1

    def test_no_temp_files_left_behind(self, cache, dse_runner):
        cache.put("k", dse_runner.evaluate_point(POINT))
        leftovers = [p.name for p in cache.root.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_truncated_entry_is_evicted_and_missed(self, cache, dse_runner):
        cache.put("k", dse_runner.evaluate_point(POINT))
        path = cache._entry_path("k")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("k") is None
        assert not path.exists()

    def test_wrong_type_entry_is_evicted(self, cache):
        cache._open()
        with open(cache._entry_path("k"), "wb") as handle:
            pickle.dump({"not": "a result"}, handle)
        assert cache.get("k") is None
        assert not cache._entry_path("k").exists()

    def test_garbage_bytes_entry_is_evicted(self, cache):
        cache._open()
        cache._entry_path("k").write_bytes(b"\x00\xffnot a pickle")
        assert cache.get("k") is None


class TestSchemaEviction:
    def test_old_schema_entries_evicted_on_open(self, cache, dse_runner):
        cache.put("k", dse_runner.evaluate_point(POINT))
        (cache.root / "SCHEMA").write_text("0\n")
        reopened = DseCache(cache.root)
        assert reopened.get("k") is None
        assert (cache.root / "SCHEMA").read_text().strip() == str(
            CACHE_SCHEMA_VERSION
        )

    def test_current_schema_entries_survive_reopen(self, cache, dse_runner):
        result = dse_runner.evaluate_point(POINT)
        cache.put("k", result)
        assert DseCache(cache.root).get("k") == result


class TestSweepIntegration:
    def test_corrupt_entry_recomputes_not_raises(self, cache, dse_runner):
        reference = evaluate_points(dse_runner, [POINT], cache=cache)
        key = cache.key(runner_fingerprint(dse_runner), POINT)
        cache._entry_path(key).write_bytes(b"torn write")
        again = evaluate_points(dse_runner, [POINT], cache=cache)
        assert again == reference
        # The recompute must also have repaired the store.
        assert cache.get(key) == reference[0]
