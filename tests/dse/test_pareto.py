"""Unit tests for Pareto-frontier extraction over DSE points."""

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig
from repro.dse.pareto import (
    best_within_area,
    knee_point,
    pareto_frontier,
    render_frontier,
    smallest_meeting_speedup,
)
from repro.dse.runner import DesignPointResult


def _point(area: float, speedup: float, label_bytes: int = 2048) -> DesignPointResult:
    return DesignPointResult(
        algorithm="snappy",
        operation=Operation.COMPRESS,
        config=CdpuConfig(encoder_history_bytes=label_bytes),
        accel_seconds=1.0 / speedup,
        xeon_seconds=1.0,
        area_mm2=area,
    )


POINTS = [
    _point(0.3, 10.0),
    _point(0.4, 9.0),  # dominated (bigger and slower than 0.3/10)
    _point(0.5, 12.0),
    _point(0.6, 12.0),  # dominated (same speedup, bigger)
    _point(0.8, 15.0),
]


class TestFrontier:
    def test_dominated_points_removed(self):
        frontier = pareto_frontier(POINTS)
        pairs = [(f.area_mm2, f.speedup) for f in frontier]
        assert pairs == [(0.3, 10.0), (0.5, 12.0), (0.8, 15.0)]

    def test_frontier_sorted_and_strictly_improving(self):
        frontier = pareto_frontier(POINTS)
        areas = [f.area_mm2 for f in frontier]
        speeds = [f.speedup for f in frontier]
        assert areas == sorted(areas)
        assert all(a < b for a, b in zip(speeds, speeds[1:]))

    def test_empty_input(self):
        assert pareto_frontier([]) == []
        assert knee_point([]) is None

    def test_single_point(self):
        frontier = pareto_frontier([_point(0.3, 5.0)])
        assert len(frontier) == 1
        assert knee_point(frontier) is frontier[0]

    def test_knee_prefers_marginal_value(self):
        frontier = pareto_frontier(
            [_point(0.1, 1.0), _point(0.2, 10.0), _point(1.0, 11.0)]
        )
        knee = knee_point(frontier)
        assert knee.area_mm2 == pytest.approx(0.2)

    def test_render(self):
        text = render_frontier(pareto_frontier(POINTS))
        assert "knee" in text and "mm^2" in text


class TestBudgetQueries:
    def test_best_within_area(self):
        assert best_within_area(POINTS, 0.55).speedup == 12.0
        assert best_within_area(POINTS, 0.25) is None

    def test_smallest_meeting_speedup(self):
        assert smallest_meeting_speedup(POINTS, 11.0).area_mm2 == 0.5
        assert smallest_meeting_speedup(POINTS, 99.0) is None


class TestOnRealSweep:
    def test_frontier_from_figure_points(self, figures):
        points = figures["fig12"].points + figures["fig13"].points
        frontier = pareto_frontier(points)
        assert 2 <= len(frontier) <= len(points)
        # The paper's tiny 2K/2^9 design must be on the frontier: nothing
        # smaller exists and nothing as small is faster.
        smallest = min(points, key=lambda p: p.area_mm2)
        assert any(f.point is smallest for f in frontier) or any(
            f.area_mm2 <= smallest.area_mm2 for f in frontier
        )
