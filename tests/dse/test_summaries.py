"""Tests for the regenerated FINAL_TEXT_SUMMARIES report."""

import pytest

from repro.dse.experiments import speculation_study
from repro.dse.summaries import claim_checks, final_text_summaries


@pytest.fixture(scope="module")
def checks(figures, dse_runner):
    return claim_checks(figures, speculation_study(dse_runner))


class TestClaimChecks:
    def test_every_check_has_both_sides(self, checks):
        for check in checks:
            assert check.paper_value
            assert check.measured_value
            assert "measured" in check.render()

    def test_flagship_claim_present(self, checks):
        claims = [c.claim for c in checks]
        assert any("Flagship speedups" in c for c in claims)
        assert any("speculation" in c.lower() for c in claims)

    def test_at_least_a_dozen_claims(self, checks):
        assert len(checks) >= 12


def test_full_report_renders(dse_runner):
    text = final_text_summaries(dse_runner)
    assert "FINAL TEXT SUMMARIES" in text
    assert "Figure 11" in text and "Figure 15" in text
    assert "spec=32" in text
