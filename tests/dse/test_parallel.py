"""Bit-identical parallel + cached sweeps — the tentpole's core guarantee.

``DesignPointResult`` is a frozen dataclass, so ``==`` compares every float
field exactly: the assertions below demand *bit-identical* results across
worker counts and cache states, not approximate agreement.
"""

import pytest

from repro.algorithms.base import Operation
from repro.common.errors import ConfigError
from repro.core.params import CdpuConfig
from repro.dse.cache import DseCache
from repro.dse.parallel import JOBS_ENV_VAR, evaluate_points, resolve_jobs
from repro.dse.runner import DesignPoint, DseRunner
from repro.soc.placement import Placement


def small_sweep():
    """Four quick points spanning placements, SRAM sizes and operations."""
    return [
        DesignPoint("snappy", Operation.DECOMPRESS, CdpuConfig()),
        DesignPoint(
            "snappy",
            Operation.DECOMPRESS,
            CdpuConfig(placement=Placement.CHIPLET, decoder_history_bytes=4096),
        ),
        DesignPoint("snappy", Operation.COMPRESS, CdpuConfig()),
        DesignPoint(
            "snappy",
            Operation.COMPRESS,
            CdpuConfig(
                placement=Placement.PCIE_NO_CACHE, encoder_history_bytes=16 * 1024
            ),
        ),
    ]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(2) == 2

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    @pytest.mark.parametrize("bad", ["zero", "1.5", ""])
    def test_malformed_environment_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(JOBS_ENV_VAR, bad)
        if bad == "":
            assert resolve_jobs(None) == 1  # unset-equivalent
        else:
            with pytest.raises(ConfigError):
                resolve_jobs(None)

    @pytest.mark.parametrize("bad", [0, -4])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ConfigError):
            resolve_jobs(bad)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, dse_runner):
        points = small_sweep()
        serial = evaluate_points(dse_runner, points, jobs=1)
        parallel = evaluate_points(dse_runner, points, jobs=4)
        assert parallel == serial

    def test_results_align_with_point_order(self, dse_runner):
        points = small_sweep()
        results = evaluate_points(dse_runner, points, jobs=4)
        for point, result in zip(points, results):
            assert result.algorithm == point.algorithm
            assert result.operation == point.operation
            assert result.config == point.config

    def test_cold_and_warm_cache_match_uncached(self, dse_runner, tmp_path):
        points = small_sweep()
        cache = DseCache(tmp_path / "cache")
        uncached = evaluate_points(dse_runner, points)
        cold = evaluate_points(dse_runner, points, cache=cache)
        assert cache.stores == len(points)
        warm = evaluate_points(dse_runner, points, cache=cache)
        assert cache.hits == len(points)
        assert cold == uncached
        assert warm == uncached

    def test_partial_cache_mixes_correctly(self, dse_runner, tmp_path):
        points = small_sweep()
        cache = DseCache(tmp_path / "cache")
        evaluate_points(dse_runner, points[:2], cache=cache)
        mixed = evaluate_points(dse_runner, points, cache=cache)
        assert mixed == evaluate_points(dse_runner, points)
        assert cache.hits == 2 and cache.stores == len(points)


class TestRunnerIntegration:
    def test_evaluate_many_honours_runner_engine_options(self, bench, tmp_path):
        points = small_sweep()[:2]
        cache = DseCache(tmp_path / "cache")
        runner = DseRunner(bench, jobs=2, cache=cache)
        results = runner.evaluate_many(points)
        assert cache.stores == len(points)
        baseline = DseRunner(bench)
        assert results == [baseline.evaluate_point(p) for p in points]

    def test_empty_sweep(self, dse_runner):
        assert evaluate_points(dse_runner, []) == []
