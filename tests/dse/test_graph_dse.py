"""Graph-aware DSE: the winning transform graph emerges from the sweep."""

import json
from pathlib import Path

import pytest

from repro.dse.graphs import (
    GRAPH_BACKENDS,
    GRAPH_TRANSFORM_CHAINS,
    graph_candidates,
    sweep_graph_designs,
    sweep_summary_lines,
)

_ARTIFACT = Path(__file__).resolve().parents[2] / "results" / "graph_dse.json"


def test_candidate_lattice_shape():
    candidates = graph_candidates()
    assert len(candidates) == len(GRAPH_TRANSFORM_CHAINS) * len(GRAPH_BACKENDS)
    # Backend-only pipelines are present (the "no transform" baseline).
    for backend in GRAPH_BACKENDS:
        assert backend in candidates
    # Every candidate label ends in its backend.
    for label in candidates:
        assert label.split(" > ")[-1] in GRAPH_BACKENDS


def test_small_sweep_is_deterministic_and_graphs_win_on_floats():
    kwargs = dict(size=6 * 1024, workloads=("float_timeseries",))
    first = sweep_graph_designs(**kwargs)
    second = sweep_graph_designs(**kwargs)
    cell = first["workloads"]["float_timeseries"]
    # Ratios (not throughput) are deterministic in (seed, size).
    assert cell["graph_ratios"] == second["workloads"]["float_timeseries"]["graph_ratios"]
    assert cell["codec_ratios"] == second["workloads"]["float_timeseries"]["codec_ratios"]
    # The acceptance property, at reduced size: some transform graph beats
    # every monolithic codec on the float corpus — and the winner is the
    # sweep's argmin, not a hard-coded pick.
    assert cell["graph_beats_all_codecs"]
    assert cell["winner_graph"] == min(cell["graph_ratios"], key=cell["graph_ratios"].get)
    assert cell["winner_graph_ratio"] < min(cell["codec_ratios"].values())
    assert len(sweep_summary_lines(first)) == 1


class TestCommittedArtifact:
    """results/graph_dse.json is the committed experiment: re-derivable and
    internally consistent."""

    @pytest.fixture(scope="class")
    def artifact(self):
        assert _ARTIFACT.exists(), (
            "regenerate with: python -m repro graph sweep --out results/graph_dse.json"
        )
        return json.loads(_ARTIFACT.read_text())

    def test_float_graph_beats_every_monolithic_codec(self, artifact):
        cell = artifact["workloads"]["float_timeseries"]
        assert cell["graph_beats_all_codecs"] is True
        assert cell["winner_graph_ratio"] < min(cell["codec_ratios"].values())
        # The winner contains at least one transform stage (the design-axis
        # point of the experiment: transforms, not just another backend).
        assert " > " in cell["winner_graph"]

    def test_columnar_graph_beats_every_monolithic_codec(self, artifact):
        cell = artifact["workloads"]["columnar_records"]
        assert cell["graph_beats_all_codecs"] is True

    def test_classic_controls_present(self, artifact):
        # Text/log are controls: monolithic LZ should still win there, which
        # is what makes the float/columnar wins meaningful.
        for workload in ("text", "log"):
            assert workload in artifact["workloads"]

    def test_ratios_match_a_fresh_sweep(self, artifact):
        fresh = sweep_graph_designs(
            seed=artifact["seed"],
            size=artifact["size"],
            workloads=("float_timeseries",),
        )
        committed = artifact["workloads"]["float_timeseries"]
        recomputed = fresh["workloads"]["float_timeseries"]
        assert committed["graph_ratios"] == recomputed["graph_ratios"]
        assert committed["codec_ratios"] == recomputed["codec_ratios"]
        assert committed["winner_graph"] == recomputed["winner_graph"]
