"""Shape assertions for the reproduced Figures 11-15 (paper §6.2-§6.5).

Per DESIGN.md, absolute cycle counts are not expected to match the FPGA
numbers; *shapes* — who wins, by roughly what factor, where crossovers fall —
must. Each test quotes the paper statement it checks.
"""

import pytest

from repro.dse.experiments import speculation_study
from repro.dse.sweeps import SRAM_SIZES, sram_labels


class TestFigure11SnappyDecompression:
    def test_flagship_speedup_near_10x(self, figures):
        """'over 10x faster than the Xeon' at 64K RoCC."""
        assert figures["fig11"].speedup("RoCC", "64K") == pytest.approx(10.4, rel=0.12)

    def test_rocc_barely_degrades_with_small_sram(self, figures):
        """§6.2: 38% area saving for only ~4.3% speedup reduction at 2K."""
        fig = figures["fig11"]
        loss = 1 - fig.speedup("RoCC", "2K") / fig.speedup("RoCC", "64K")
        assert 0.0 < loss < 0.10
        assert 1 - fig.area_normalized[-1] == pytest.approx(0.38, abs=0.02)

    def test_chiplet_close_to_rocc_at_64k(self, figures):
        """§6.2: chiplet '9.5x speedup ... only 1.1x worse' at 64K."""
        fig = figures["fig11"]
        penalty = fig.speedup("RoCC", "64K") / fig.speedup("Chiplet", "64K")
        assert penalty == pytest.approx(1.1, abs=0.08)

    def test_chiplet_collapses_at_small_sram(self, figures):
        """§6.2: at the smallest windows chiplet drops to PCIe levels."""
        fig = figures["fig11"]
        assert fig.speedup("Chiplet", "2K") < fig.speedup("PCIeLocalCache", "64K")

    def test_pcie_5_6x_slower_than_near_core(self, figures):
        """§6.2: PCIe incurs 'a significant (5.6x) slowdown vs the near-core
        CDPU' at 64K."""
        fig = figures["fig11"]
        slowdown = fig.speedup("RoCC", "64K") / fig.speedup("PCIeNoCache", "64K")
        assert slowdown == pytest.approx(5.6, rel=0.25)

    def test_pcie_variants_identical_at_64k(self, figures):
        """§6.2: PCIeLocalCache has 'an identical starting speedup' at 64K
        (no off-accelerator history lookups at the full window)."""
        fig = figures["fig11"]
        assert fig.speedup("PCIeLocalCache", "64K") == pytest.approx(
            fig.speedup("PCIeNoCache", "64K"), rel=0.02
        )

    def test_local_cache_preserves_sram_scaling_better(self, figures):
        """§6.2: with a card-local cache the SRAM optimization 'continues to
        work', unlike PCIeNoCache."""
        fig = figures["fig11"]
        local_loss = 1 - fig.speedup("PCIeLocalCache", "2K") / fig.speedup("PCIeLocalCache", "64K")
        remote_loss = 1 - fig.speedup("PCIeNoCache", "2K") / fig.speedup("PCIeNoCache", "64K")
        assert local_loss < remote_loss

    def test_area_monotone_with_sram(self, figures):
        areas = figures["fig11"].area_normalized
        assert all(a >= b for a, b in zip(areas, areas[1:]))


class TestFigure12SnappyCompression:
    def test_flagship_speedup_near_16x(self, figures):
        assert figures["fig12"].speedup("RoCC", "64K") == pytest.approx(16.3, rel=0.12)

    def test_hw_beats_sw_ratio_at_64k(self, figures):
        """§6.3: '1.1% higher compression ratio than Snappy SW' (skipping)."""
        assert figures["fig12"].ratio_vs_sw[0] >= 0.998

    def test_ratio_loss_grows_as_history_shrinks(self, figures):
        ratios = figures["fig12"].ratio_vs_sw
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
        assert 0.90 <= ratios[-1] <= 0.97  # ~8% loss at 2K in the paper

    def test_chiplet_loss_small(self, figures):
        """§6.3: 'less than 1.7% loss of speedup vs the near core design'."""
        fig = figures["fig12"]
        for label in sram_labels():
            loss = 1 - fig.speedup("Chiplet", label) / fig.speedup("RoCC", label)
            assert loss < 0.05

    def test_pcie_compression_still_worthwhile(self, figures):
        """§6.3: PCIe 'fares much better than in the decompression case'."""
        assert figures["fig12"].speedup("PCIeNoCache", "64K") > 3.0

    def test_speedup_dips_only_modestly_at_small_sram(self, figures):
        fig = figures["fig12"]
        loss = 1 - fig.speedup("RoCC", "2K") / fig.speedup("RoCC", "64K")
        assert 0.0 <= loss < 0.12  # paper: 16.3x -> 14.8-15.5x

    def test_area_20_percent_saving_at_2k(self, figures):
        assert 1 - figures["fig12"].area_normalized[-1] == pytest.approx(0.20, abs=0.03)


class TestFigure13SmallHashTable:
    def test_area_34_percent_of_full_design_at_2k(self, figures):
        """§6.3: 2^9 entries + 2K history = 34% of the full-size area."""
        assert figures["fig13"].area_normalized[-1] == pytest.approx(0.34, abs=0.02)

    def test_negligible_speedup_loss_vs_fig12(self, figures):
        """§6.3: 'a negligible loss of speedup'."""
        for label in sram_labels():
            full = figures["fig12"].speedup("RoCC", label)
            small = figures["fig13"].speedup("RoCC", label)
            assert small > 0.85 * full

    def test_extra_ratio_loss_of_a_few_percent(self, figures):
        """§6.3: '~3% compared to the 2K history, 2^14 entry design'."""
        extra = figures["fig12"].ratio_vs_sw[-1] - figures["fig13"].ratio_vs_sw[-1]
        assert 0.0 < extra < 0.09

    def test_area_normalization_uses_full_design(self, figures):
        assert figures["fig13"].area_normalized[0] < 0.60  # 64K9HT well below 1


class TestFigure14ZstdDecompression:
    def test_flagship_speedup_near_4_2x(self, figures):
        assert figures["fig14"].speedup("RoCC", "64K") == pytest.approx(4.2, rel=0.1)

    def test_slower_than_snappy_decompression(self, figures):
        """§6.4: entropy stages reduce throughput vs the Snappy CDPU."""
        assert figures["fig14"].speedup("RoCC", "64K") < figures["fig11"].speedup("RoCC", "64K")

    def test_sram_area_swing_only_8_6_percent(self, figures):
        assert 1 - figures["fig14"].area_normalized[-1] == pytest.approx(0.086, abs=0.01)

    def test_speculation_dominates_design_quality(self, dse_runner, figures):
        """§6.6 lesson 4: speculation swings results more than history SRAM."""
        spec = {p.speculation: p.speedup for p in speculation_study(dse_runner)}
        sram_swing = figures["fig14"].speedup("RoCC", "64K") / figures["fig14"].speedup(
            "RoCC", "2K"
        )
        spec_swing = spec[32] / spec[4]
        assert spec_swing > 2 * sram_swing

    def test_speculation_sweep_matches_paper(self, dse_runner):
        """§6.4: 2.11x / 4.2x / 5.64x for speculation 4 / 16 / 32."""
        spec = {p.speculation: p.speedup for p in speculation_study(dse_runner)}
        assert spec[4] == pytest.approx(2.11, rel=0.15)
        assert spec[16] == pytest.approx(4.2, rel=0.1)
        assert spec[32] == pytest.approx(5.64, rel=0.15)

    def test_speculation_area_tradeoff(self, dse_runner):
        spec = {p.speculation: p.area_mm2 for p in speculation_study(dse_runner)}
        assert spec[32] / spec[16] == pytest.approx(1.18, abs=0.02)
        assert spec[4] / spec[16] == pytest.approx(0.90, abs=0.02)


class TestFigure15ZstdCompression:
    def test_flagship_speedup_near_15_8x(self, figures):
        assert figures["fig15"].speedup("RoCC", "64K") == pytest.approx(15.8, rel=0.12)

    def test_hw_ratio_below_software(self, figures):
        """§6.5: the greedy Snappy-configured encoder trails software (the
        paper reports 84%; our software ZStd's matcher is closer to greedy,
        so the measured gap is smaller — see EXPERIMENTS.md)."""
        assert figures["fig15"].ratio_vs_sw[0] < 1.0

    def test_ratio_decays_with_history(self, figures):
        ratios = figures["fig15"].ratio_vs_sw
        assert ratios[-1] < ratios[0]

    def test_pcie_speedup_still_large(self, figures):
        """§6.6 lesson 2: 'over ... 8.2x speedup (ZStd) in the PCIe case'."""
        assert figures["fig15"].speedup("PCIeNoCache", "64K") > 4.5


class TestCrossFigure:
    def test_every_figure_has_six_sram_points(self, figures):
        for fig in figures.values():
            assert fig.x_labels == sram_labels()
            for series in fig.series.values():
                assert len(series) == len(SRAM_SIZES)

    def test_rocc_dominates_every_figure(self, figures):
        for fig in figures.values():
            for i, _ in enumerate(fig.x_labels):
                rocc = fig.series["RoCC"][i]
                assert all(fig.series[s][i] <= rocc * 1.001 for s in fig.series)

    def test_speedup_range_spans_more_than_40x(self, figures):
        """Abstract: 'a 46x range in CDPU speedup' across the exploration."""
        speedups = [p.speedup for f in figures.values() for p in f.points]
        assert max(speedups) / min(speedups) > 40

    def test_single_pipeline_area_range_about_3x(self, figures):
        """Abstract: '3x range in silicon area (for a single pipeline)'."""
        snappy_comp_areas = [p.area_mm2 for p in figures["fig12"].points] + [
            p.area_mm2 for p in figures["fig13"].points
        ]
        assert max(snappy_comp_areas) / min(snappy_comp_areas) == pytest.approx(2.9, abs=0.4)

    def test_tables_render(self, figures):
        for fig in figures.values():
            table = fig.to_table()
            assert fig.figure_id in table
            csv_text = fig.to_csv()
            assert csv_text.count("\n") >= len(fig.x_labels) * len(fig.series)

    def test_best_and_worst_points(self, figures):
        fig = figures["fig11"]
        assert fig.best_point().speedup >= fig.worst_point().speedup
