"""Unit tests for the DSE runner (§6.1 methodology)."""

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig
from repro.soc.placement import Placement


class TestEvaluation:
    def test_design_point_fields(self, dse_runner):
        point = dse_runner.evaluate(CdpuConfig(), "snappy", Operation.DECOMPRESS)
        assert point.accel_seconds > 0
        assert point.xeon_seconds > 0
        assert point.area_mm2 == pytest.approx(0.431, abs=0.001)
        assert point.speedup == pytest.approx(point.xeon_seconds / point.accel_seconds)
        assert point.hw_ratio is None  # decompression has no ratio series

    def test_compression_point_has_ratios(self, dse_runner):
        point = dse_runner.evaluate(CdpuConfig(), "snappy", Operation.COMPRESS)
        assert point.hw_ratio is not None and point.sw_ratio is not None
        assert point.ratio_vs_software == pytest.approx(point.hw_ratio / point.sw_ratio)

    def test_throughput_properties(self, dse_runner):
        point = dse_runner.evaluate(CdpuConfig(), "snappy", Operation.DECOMPRESS)
        assert point.accel_gbps > point.xeon_gbps > 0

    def test_placements_share_decode_workload(self, dse_runner):
        """Parsing is config-independent; placements reuse it (cache hit)."""
        a = dse_runner.evaluate(CdpuConfig(), "zstd", Operation.DECOMPRESS)
        b = dse_runner.evaluate(
            CdpuConfig(placement=Placement.CHIPLET), "zstd", Operation.DECOMPRESS
        )
        assert a.xeon_seconds == b.xeon_seconds
        assert a.accel_seconds < b.accel_seconds

    def test_encode_workload_keyed_by_encoder_params(self, dse_runner):
        key_a = dse_runner._encoder_key("snappy", CdpuConfig())
        key_b = dse_runner._encoder_key("snappy", CdpuConfig(placement=Placement.CHIPLET))
        key_c = dse_runner._encoder_key("snappy", CdpuConfig(encoder_history_bytes=2048))
        assert key_a == key_b  # placement does not re-run the matcher
        assert key_a != key_c  # history size does

    def test_xeon_seconds_memoized(self, dse_runner):
        first = dse_runner.xeon_seconds("snappy", Operation.COMPRESS)
        assert dse_runner.xeon_seconds("snappy", Operation.COMPRESS) == first
