"""Unit tests for the FigureResult container and its renderings."""

import pytest

from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig
from repro.dse.results import FigureResult
from repro.dse.runner import DesignPointResult


def _figure():
    points = [
        DesignPointResult(
            algorithm="snappy",
            operation=Operation.DECOMPRESS,
            config=CdpuConfig(),
            accel_seconds=0.1,
            xeon_seconds=1.0,
            area_mm2=0.4,
        ),
        DesignPointResult(
            algorithm="snappy",
            operation=Operation.DECOMPRESS,
            config=CdpuConfig(decoder_history_bytes=2048),
            accel_seconds=0.2,
            xeon_seconds=1.0,
            area_mm2=0.25,
        ),
    ]
    return FigureResult(
        figure_id="Figure T",
        title="test figure",
        x_labels=["64K", "2K"],
        series={"RoCC": [10.0, 5.0], "PCIe": [2.0, 1.0]},
        area_normalized=[1.0, 0.625],
        ratio_vs_sw=[1.0, 0.95],
        points=points,
    )


class TestSpeedupLookup:
    def test_by_series_and_label(self):
        assert _figure().speedup("RoCC", "2K") == 5.0

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            _figure().speedup("Chiplet", "2K")

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            _figure().speedup("RoCC", "128K")


class TestRendering:
    def test_table_has_all_columns(self):
        table = _figure().to_table()
        assert "Figure T" in table
        assert "Area(norm)" in table and "Ratio vs SW" in table
        assert "64K" in table and "2K" in table

    def test_table_without_secondary_axes(self):
        fig = _figure()
        fig.area_normalized = []
        fig.ratio_vs_sw = []
        table = fig.to_table()
        assert "Area(norm)" not in table

    def test_notes_appended(self):
        fig = _figure()
        fig.notes.append("scaled suite")
        assert "note: scaled suite" in fig.to_table()

    def test_csv_rows(self):
        csv_text = _figure().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("figure,")
        assert len(lines) == 1 + 2 * 2  # header + labels x series
        assert "Figure T,64K,RoCC,10.0000" in csv_text


class TestBestWorst:
    def test_best_and_worst(self):
        fig = _figure()
        assert fig.best_point().speedup == pytest.approx(10.0)
        assert fig.worst_point().speedup == pytest.approx(5.0)
