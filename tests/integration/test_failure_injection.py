"""Failure injection: corrupted streams must never silently mis-decode.

Every decoder in the library raises
:class:`~repro.common.errors.CorruptStreamError` on damaged input, never
hangs, and never returns wrong bytes silently. The fuzz matrix drives every
registered codec through truncation at each 1/8 boundary and single-byte
corruption; the content CRC-32C trailer (see ``repro.algorithms.container``)
makes detection exhaustive for the custom containers and the framed Snappy
format.

Raw Snappy is the documented exception for the corruption leg: its wire
format is the open-source ``format_description.txt`` one, which carries no
checksum, so a flipped literal byte decodes "successfully" to wrong bytes.
Its corruption leg therefore targets the structural preamble, where the
declared-length invariant guarantees detection; arbitrary-position mutations
keep the weaker length-invariant check.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import available_codecs, get_codec
from repro.common.errors import CorruptStreamError, ReproError

PAYLOAD = (
    b"resilience testing payload: structured, repetitive, and long enough "
    b"to exercise matches and entropy tables. " * 40
)

#: Codecs whose wire format lacks an integrity check by design (wire-format
#: fidelity with the open-source format): corruption detection is only
#: guaranteed for structural bytes.
UNCHECKSUMMED = {"snappy"}


def _mutate(data: bytes, position: int, delta: int) -> bytes:
    mutated = bytearray(data)
    mutated[position % len(mutated)] = (mutated[position % len(mutated)] + delta) % 256
    return bytes(mutated)


def _eighth_boundaries(n: int) -> list:
    """Distinct offsets at each 1/8 of the stream (clamped inside it)."""
    return sorted({min(n - 1, max(1, (n * i) // 8)) for i in range(1, 8)})


@pytest.mark.parametrize("codec_name", available_codecs())
class TestFuzzMatrix:
    """The codec x {truncation, corruption} matrix from DESIGN.md §7."""

    def test_truncation_at_each_eighth(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        for cut in _eighth_boundaries(len(compressed)):
            with pytest.raises(CorruptStreamError):
                get_codec(codec_name).decompress(compressed[:cut])

    def test_single_byte_corruption_at_each_eighth(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        if codec_name in UNCHECKSUMMED:
            # Structural bytes only: the varint preamble declares the output
            # length, so any change there trips the produced-vs-promised check.
            positions = range(2)
        else:
            positions = _eighth_boundaries(len(compressed))
        for position in positions:
            for delta in (1, 0x55, 0xFF):
                mutated = _mutate(compressed, position, delta)
                try:
                    out = get_codec(codec_name).decompress(mutated)
                except CorruptStreamError:
                    continue  # detected: good
                # The only silent escape: the mutation did not change the
                # decoded content (e.g. it hit unread padding bits).
                assert out == PAYLOAD, (
                    f"{codec_name}: corrupt byte at {position} (+{delta:#x}) "
                    f"decoded silently to wrong bytes"
                )

    def test_empty_input(self, codec_name):
        with pytest.raises(ReproError):
            get_codec(codec_name).decompress(b"")


@pytest.mark.parametrize("codec_name", available_codecs())
class TestRandomMutations:
    """Random-position mutations: length invariant everywhere, full content
    integrity for every checksummed codec."""

    def test_single_byte_mutations(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        rng = random.Random(17)
        for _ in range(40):
            position = rng.randrange(len(compressed))
            delta = rng.randrange(1, 256)
            try:
                out = get_codec(codec_name).decompress(_mutate(compressed, position, delta))
            except ReproError:
                continue  # detected: good
            except (IndexError, KeyError, OverflowError, MemoryError) as exc:
                pytest.fail(f"{codec_name} leaked internal exception {exc!r}")
            if codec_name in UNCHECKSUMMED:
                assert len(out) == len(PAYLOAD)  # length invariant only
            else:
                assert out == PAYLOAD  # CRC trailer: no silent wrong bytes

    def test_truncations(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        for cut in (1, len(compressed) // 4, len(compressed) // 2, len(compressed) - 1):
            with pytest.raises(ReproError):
                codec.decompress(compressed[:cut])


@pytest.mark.parametrize("codec_name", available_codecs())
class TestStreamingTruncation:
    """Mid-stream truncation through the incremental decompress contexts.

    A truncated stream fed chunk-by-chunk must fail with the same error
    class as the one-shot decoder (:class:`CorruptStreamError`) — at the
    latest from the final ``flush``, which is what guards against a
    streaming consumer mistaking a truncated stream for a complete one.
    Bytes emitted by earlier feeds are fine (that is what streaming is
    for); *finishing* without an error is not.
    """

    CHUNK_SIZES = (1, 7, 64)

    def _stream_decompress(self, codec_name, stream, chunk_size):
        ctx = get_codec(codec_name).decompress_context()
        for start in range(0, len(stream), chunk_size):
            ctx.feed(stream[start : start + chunk_size])
        ctx.flush()
        return ctx

    def test_truncation_at_chunk_boundaries(self, codec_name):
        compressed = get_codec(codec_name).compress(PAYLOAD)
        for chunk_size in self.CHUNK_SIZES:
            # Cut on an exact feed boundary: the context is in a clean
            # between-feeds state, so only the final flush can object.
            for boundary in _eighth_boundaries(len(compressed)):
                cut = max(chunk_size, boundary - boundary % chunk_size)
                truncated = compressed[:cut]
                with pytest.raises(CorruptStreamError):
                    get_codec(codec_name).decompress(truncated)
                ctx = get_codec(codec_name).decompress_context()
                with pytest.raises(CorruptStreamError):
                    for start in range(0, cut, chunk_size):
                        ctx.feed(truncated[start : start + chunk_size])
                    ctx.flush()
                assert not ctx.finished

    def test_truncation_at_misaligned_cuts(self, codec_name):
        compressed = get_codec(codec_name).compress(PAYLOAD)
        for chunk_size in self.CHUNK_SIZES:
            for cut in _eighth_boundaries(len(compressed)):
                with pytest.raises(CorruptStreamError):
                    self._stream_decompress(
                        codec_name, compressed[:cut], chunk_size
                    )

    def test_failed_context_is_poisoned(self, codec_name):
        from repro.common.errors import StreamStateError

        compressed = get_codec(codec_name).compress(PAYLOAD)
        ctx = get_codec(codec_name).decompress_context()
        with pytest.raises(CorruptStreamError):
            ctx.feed(compressed[: len(compressed) // 2])
            ctx.flush()
        with pytest.raises(StreamStateError):
            ctx.feed(compressed[len(compressed) // 2 :])

    def test_empty_stream_rejected_by_flush(self, codec_name):
        ctx = get_codec(codec_name).decompress_context()
        with pytest.raises(ReproError):
            ctx.flush()


#: Committed wire grammars (statically extracted by
#: ``repro.lint.flow.grammar``, drift-gated by
#: ``tests/lint/test_frame_grammars.py``). The fuzz rows below are *seeded*
#: from them, so the static analyzer's view of each frame layout and the
#: dynamic corruption coverage stay linked: move a header field and both
#: the drift gate and these offsets shift together.
_GRAMMARS = json.loads(
    (Path(__file__).resolve().parents[2] / "results" / "frame_grammars.json")
    .read_text(encoding="utf-8")
)["grammars"]

#: Byte offset of each frame's uncompressed-length varint, derived from the
#: grammar artifact: ``header_bytes`` counts the fixed-width fields (magic /
#: version / window-log) written before it. All of these mirror Snappy's
#: spec, which limits the declared length to 32 bits. ``snappy-framed``
#: carries raw Snappy frames inside chunks rather than a frame-level
#: preamble, so it has no varint field and is covered through the raw
#: codec's entry.
PREAMBLE_OFFSET = {
    name: grammar["header_bytes"]
    for name, grammar in _GRAMMARS.items()
    if name in set(available_codecs())
    and any(field["kind"] == "varint" for field in grammar["fields"])
}


def _fixed_fields(grammar):
    """``(field, offset)`` per fixed-width header field before the varint."""
    out, pos = [], 0
    for field in grammar["fields"]:
        if field.get("width") is None:
            break
        out.append((field, pos))
        pos += field["width"]
    return out


class TestOversizedPreamble:
    """A declared length beyond the 32-bit preamble limit is structural
    corruption: it must raise, not be honoured as a multi-GiB promise that
    only fails at the produced-vs-promised check (or an allocation)."""

    @pytest.mark.parametrize("codec_name", sorted(PREAMBLE_OFFSET))
    def test_oversized_length_preamble_rejected(self, codec_name):
        from repro.common.varint import MAX_VARINT32, decode_varint, encode_varint

        compressed = get_codec(codec_name).compress(PAYLOAD)
        offset = PREAMBLE_OFFSET[codec_name]
        declared, end = decode_varint(compressed, offset, max_bits=32)
        assert declared == len(PAYLOAD), "grammar-derived varint offset is stale"
        spliced = (
            compressed[:offset] + encode_varint(MAX_VARINT32 + 1) + compressed[end:]
        )
        with pytest.raises(CorruptStreamError):
            get_codec(codec_name).decompress(spliced)


class TestGrammarDerivedHeader:
    """Fuzz rows seeded by the committed wire grammars: truncation inside
    every fixed header field, wrong-version-byte corruption for every
    version-gated frame, and out-of-range window-log corruption for every
    guarded frame. New codecs (and new header fields) join these rows the
    moment their grammar lands in the artifact — no hand-written offset
    table to forget."""

    CODECS = sorted(set(available_codecs()) & set(_GRAMMARS))
    VERSION_GATED = [
        name
        for name in CODECS
        if any(f.get("gate") == "version" for f in _GRAMMARS[name]["fields"])
    ]
    WINDOW_GUARDED = [
        name
        for name in CODECS
        if any(f.get("guard") for f in _GRAMMARS[name]["fields"])
    ]

    def test_artifact_anchors(self):
        """Hand-pinned layout facts guard the artifact itself: if
        ``frame_grammars.json`` regressed, fail here rather than silently
        fuzz the wrong offsets."""
        assert PREAMBLE_OFFSET["snappy"] == 0
        assert PREAMBLE_OFFSET["zstd"] == 6
        assert _GRAMMARS["snappy-framed"]["header_bytes"] == 10
        assert self.VERSION_GATED and self.WINDOW_GUARDED

    @pytest.mark.parametrize("codec_name", CODECS)
    def test_truncation_inside_fixed_header(self, codec_name):
        grammar = _GRAMMARS[codec_name]
        cuts = list(range(1, grammar["header_bytes"]))
        if any(field["kind"] == "varint" for field in grammar["fields"]):
            # Header complete but length varint missing. (For varint-less
            # frames like snappy-framed a bare header is a valid empty
            # stream, so the boundary cut only applies here.)
            cuts.append(grammar["header_bytes"])
        compressed = _compressed(codec_name)
        for cut in cuts:
            with pytest.raises(CorruptStreamError):
                get_codec(codec_name).decompress(compressed[:cut])

    @pytest.mark.parametrize("codec_name", VERSION_GATED)
    def test_wrong_version_byte_rejected(self, codec_name):
        ((field, offset),) = [
            (f, at)
            for f, at in _fixed_fields(_GRAMMARS[codec_name])
            if f.get("gate") == "version"
        ]
        compressed = _compressed(codec_name)
        assert compressed[offset] == field["value"], "grammar offset is stale"
        mutated = bytearray(compressed)
        mutated[offset] = (field["value"] + 1) % 256
        with pytest.raises(CorruptStreamError):
            get_codec(codec_name).decompress(bytes(mutated))

    @pytest.mark.parametrize("codec_name", WINDOW_GUARDED)
    def test_window_log_out_of_range_rejected(self, codec_name):
        ((field, offset),) = [
            (f, at)
            for f, at in _fixed_fields(_GRAMMARS[codec_name])
            if f.get("guard")
        ]
        low, high = (int(part) for part in field["guard"].split(".."))
        compressed = _compressed(codec_name)
        assert low <= compressed[offset] <= high, "grammar offset is stale"
        for bad in (max(0, low - 1), high + 1, 0xFF):
            mutated = bytearray(compressed)
            mutated[offset] = bad
            with pytest.raises(CorruptStreamError):
                get_codec(codec_name).decompress(bytes(mutated))


@pytest.mark.parametrize("codec_name", available_codecs())
@settings(max_examples=20, deadline=None)
@given(junk=st.binary(min_size=1, max_size=200))
def test_random_junk_never_crashes_uncontrolled(codec_name, junk):
    """Arbitrary bytes must produce a controlled error (or valid output)."""
    try:
        get_codec(codec_name).decompress(junk)
    except ReproError:
        pass


class TestGraphFrameDescriptors:
    """Graph frames add a descriptor table between preamble and body; attack
    it specifically: bad stage ids, truncated tables, and a pipeline whose
    inverse does not match the body (transform-terminated)."""

    GRAPH_PRESET = "graph-delta-fse"

    def _frame_and_table_offset(self):
        from repro.algorithms.graphs import GRAPH_FRAME

        frame = _compressed(self.GRAPH_PRESET)
        _, header_len = GRAPH_FRAME.try_decode_preamble(frame)
        return frame, header_len

    def test_bad_stage_id_rejected(self):
        frame, table_at = self._frame_and_table_offset()
        mutated = bytearray(frame)
        mutated[table_at + 1] = 0x7F  # first stage id varint -> unknown id
        with pytest.raises(CorruptStreamError):
            get_codec(self.GRAPH_PRESET).decompress(bytes(mutated))

    def test_descriptor_truncation_rejected_at_every_cut(self):
        frame, table_at = self._frame_and_table_offset()
        # The delta(1)>fse table is 6 varint bytes; every cut inside it (and
        # the headers before it) must raise, never return wrong bytes.
        for cut in range(table_at + 6):
            with pytest.raises(CorruptStreamError):
                get_codec(self.GRAPH_PRESET).decompress(frame[:cut])

    def test_oversized_stage_count_rejected(self):
        from repro.algorithms.container import MAX_GRAPH_STAGES

        frame, table_at = self._frame_and_table_offset()
        mutated = bytearray(frame)
        mutated[table_at] = MAX_GRAPH_STAGES + 1
        with pytest.raises(CorruptStreamError):
            get_codec(self.GRAPH_PRESET).decompress(bytes(mutated))

    def test_mismatched_inverse_pipeline_rejected(self):
        from repro.algorithms.container import (
            StageDescriptor,
            append_content_checksum,
            encode_stage_descriptors,
        )
        from repro.algorithms.graphs import GRAPH_FRAME

        # Body coded by delta>fse, table claiming a bare transform pipeline:
        # the decoder must reject the table, not run a mismatched inverse.
        frame, table_at = self._frame_and_table_offset()
        body = frame[table_at + 6 : -4]
        lying = (
            GRAPH_FRAME.encode_preamble(content_length=len(PAYLOAD))
            + encode_stage_descriptors((StageDescriptor(1, (1,)),))
            + body
        )
        with pytest.raises(CorruptStreamError):
            get_codec(self.GRAPH_PRESET).decompress(
                append_content_checksum(lying, PAYLOAD)
            )


#: Per-codec compressed PAYLOAD, computed once — compression dominates the
#: runtime of the property tests below and the input never changes.
_COMPRESSED_CACHE = {}


def _compressed(codec_name: str) -> bytes:
    if codec_name not in _COMPRESSED_CACHE:
        _COMPRESSED_CACHE[codec_name] = get_codec(codec_name).compress(PAYLOAD)
    return _COMPRESSED_CACHE[codec_name]


def _havoc(data, base: bytes) -> bytes:
    """A short random edit script (truncate/flip/insert/delete) over ``base``.

    Starting from a *valid* stream and damaging it reaches much deeper into
    the decoders than random junk: the header parses, so the mutations land
    in match offsets, lengths, and entropy payloads.
    """
    buf = bytearray(base)
    ops = data.draw(
        st.lists(
            st.sampled_from(["truncate", "flip", "insert", "delete"]),
            min_size=1,
            max_size=4,
        ),
        label="ops",
    )
    for op in ops:
        if not buf:
            break
        pos = data.draw(st.integers(0, len(buf) - 1), label=f"{op}-pos")
        if op == "truncate":
            del buf[pos:]
        elif op == "flip":
            buf[pos] ^= data.draw(st.integers(1, 255), label="flip-mask")
        elif op == "insert":
            buf.insert(pos, data.draw(st.integers(0, 255), label="insert-byte"))
        else:
            del buf[pos]
    return bytes(buf)


@pytest.mark.parametrize("codec_name", available_codecs())
class TestExceptionContractRuntime:
    """Runtime counterpart of lint rule R007 (exception contract).

    The static rule proves that public decode surfaces cannot leak
    low-level exceptions along any modelled path; this property test
    checks the same contract dynamically on adversarial inputs: for any
    damaged stream, ``decompress`` / ``feed`` / ``flush`` either succeed
    or raise a :class:`ReproError` subclass. An ``IndexError``,
    ``KeyError``, ``struct.error``, ``MemoryError``, or hang escaping here
    is a bug the lint rule should also have caught — file both.
    """

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_one_shot_decompress_raises_only_repro_errors(self, codec_name, data):
        stream = _havoc(data, _compressed(codec_name))
        try:
            get_codec(codec_name).decompress(stream)
        except ReproError:
            pass  # controlled failure: the contract holds

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_streaming_context_raises_only_repro_errors(self, codec_name, data):
        stream = _havoc(data, _compressed(codec_name))
        chunk_size = data.draw(st.integers(1, 64), label="chunk-size")
        ctx = get_codec(codec_name).decompress_context()
        try:
            for start in range(0, len(stream), chunk_size):
                ctx.feed(stream[start : start + chunk_size])
            ctx.flush()
        except ReproError:
            pass  # controlled failure: the contract holds


class TestHardwareModelUnderCorruption:
    def test_snappy_pipeline_rejects_corrupt_stream(self):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig
        from repro.algorithms.base import Operation

        cdpu = CdpuGenerator().generate(CdpuConfig())
        pipeline = cdpu.pipeline("snappy", Operation.DECOMPRESS)
        stream = get_codec("snappy").compress(PAYLOAD)
        with pytest.raises(CorruptStreamError):
            pipeline.run(stream[: len(stream) // 2])

    def test_zstd_pipeline_rejects_corrupt_frame(self):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig
        from repro.algorithms.base import Operation

        cdpu = CdpuGenerator().generate(CdpuConfig())
        pipeline = cdpu.pipeline("zstd", Operation.DECOMPRESS)
        frame = bytearray(get_codec("zstd").compress(PAYLOAD))
        frame[4] = 99  # bad version
        with pytest.raises(CorruptStreamError):
            pipeline.run(bytes(frame))

    def test_zstd_pipeline_rejects_flipped_content_byte(self):
        """A mutation that survives structural parsing is caught by the
        content trailer before the pipeline reports success."""
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig
        from repro.algorithms.base import Operation

        cdpu = CdpuGenerator().generate(CdpuConfig())
        pipeline = cdpu.pipeline("zstd", Operation.DECOMPRESS)
        frame = bytearray(get_codec("zstd").compress(PAYLOAD))
        frame[-1] ^= 0x01  # flip a CRC trailer bit: content no longer attested
        with pytest.raises(CorruptStreamError):
            pipeline.run(bytes(frame))
