"""Failure injection: corrupted streams must never silently mis-decode.

Every decoder in the library either raises
:class:`~repro.common.errors.CorruptStreamError` or — when a mutation happens
to keep the stream self-consistent — produces output that still satisfies the
format's declared-length invariant. Silent garbage of the wrong shape is a
bug.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import available_codecs, get_codec
from repro.common.errors import CorruptStreamError, ReproError

PAYLOAD = (
    b"resilience testing payload: structured, repetitive, and long enough "
    b"to exercise matches and entropy tables. " * 40
)


def _mutate(data: bytes, position: int, delta: int) -> bytes:
    mutated = bytearray(data)
    mutated[position % len(mutated)] = (mutated[position % len(mutated)] + delta) % 256
    return bytes(mutated)


@pytest.mark.parametrize("codec_name", available_codecs())
class TestBitFlips:
    def test_single_byte_mutations(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        rng = random.Random(17)
        silent_wrong_length = 0
        for _ in range(40):
            position = rng.randrange(len(compressed))
            delta = rng.randrange(1, 256)
            try:
                out = get_codec(codec_name).decompress(_mutate(compressed, position, delta))
            except ReproError:
                continue  # detected: good
            except (IndexError, KeyError, OverflowError, MemoryError) as exc:
                pytest.fail(f"{codec_name} leaked internal exception {exc!r}")
            if len(out) != len(PAYLOAD):
                silent_wrong_length += 1
        assert silent_wrong_length == 0

    def test_truncations(self, codec_name):
        codec = get_codec(codec_name)
        compressed = codec.compress(PAYLOAD)
        for cut in (1, len(compressed) // 4, len(compressed) // 2, len(compressed) - 1):
            try:
                out = codec.decompress(compressed[:cut])
            except ReproError:
                continue
            assert len(out) == len(PAYLOAD)  # only acceptable escape

    def test_empty_input(self, codec_name):
        with pytest.raises(ReproError):
            get_codec(codec_name).decompress(b"")


@pytest.mark.parametrize("codec_name", available_codecs())
@settings(max_examples=20, deadline=None)
@given(junk=st.binary(min_size=1, max_size=200))
def test_random_junk_never_crashes_uncontrolled(codec_name, junk):
    """Arbitrary bytes must produce a controlled error (or valid output)."""
    try:
        get_codec(codec_name).decompress(junk)
    except ReproError:
        pass


class TestHardwareModelUnderCorruption:
    def test_snappy_pipeline_rejects_corrupt_stream(self):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig
        from repro.algorithms.base import Operation

        cdpu = CdpuGenerator().generate(CdpuConfig())
        pipeline = cdpu.pipeline("snappy", Operation.DECOMPRESS)
        stream = get_codec("snappy").compress(PAYLOAD)
        with pytest.raises(CorruptStreamError):
            pipeline.run(stream[: len(stream) // 2])

    def test_zstd_pipeline_rejects_corrupt_frame(self):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig
        from repro.algorithms.base import Operation

        cdpu = CdpuGenerator().generate(CdpuConfig())
        pipeline = cdpu.pipeline("zstd", Operation.DECOMPRESS)
        frame = bytearray(get_codec("zstd").compress(PAYLOAD))
        frame[4] = 99  # bad version
        with pytest.raises(CorruptStreamError):
            pipeline.run(bytes(frame))
