"""Integration tests across package boundaries.

These exercise the flows a downstream user runs: codecs under the HW model,
fleet statistics feeding the benchmark generator, benchmark suites feeding
the DSE, and the public API surface.
"""

import pytest

import repro
from repro.algorithms.base import Operation
from repro.core.params import CdpuConfig


class TestPublicApi:
    def test_quickstart_flow(self):
        codec = repro.get_codec("snappy")
        payload = codec.compress(b"hyperscale " * 1000)
        cdpu = repro.CdpuGenerator().generate(repro.CdpuConfig())
        result = cdpu.pipeline("snappy", repro.Operation.DECOMPRESS).run(payload, verify=True)
        assert result.throughput_gbps > 1.0

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestFleetToBenchmark:
    def test_suite_statistics_derive_from_fleet(self, bench, fleet_profile):
        """The generated suites must carry fleet-shaped parameters."""
        zstd_comp = bench.suite("zstd", Operation.COMPRESS)
        levels = [f.level for f in zstd_comp.files]
        assert all(l is not None for l in levels)
        # The dominant fleet level (3) must dominate the suite too.
        assert levels.count(3) >= len(levels) * 0.3

    def test_windows_are_fleet_sampled(self, bench):
        zstd_comp = bench.suite("zstd", Operation.COMPRESS)
        windows = {f.window_size for f in zstd_comp.files}
        assert windows <= {1 << b for b in range(15, 25)}


class TestHardwareSoftwareAgreement:
    """Every hardware pipeline's functional output must agree with the
    software codecs — the invariant FireSim verifies implicitly."""

    @pytest.mark.parametrize("algo", ["snappy", "zstd"])
    def test_decompressors_verify_suite_files(self, bench, algo):
        cdpu = repro.CdpuGenerator().generate(CdpuConfig())
        suite = bench.suite(algo, Operation.DECOMPRESS)
        pipeline = cdpu.pipeline(algo, Operation.DECOMPRESS)
        for file in suite.files[:5]:
            result = pipeline.run(suite.compressed_form(file), verify=True)
            assert result.output_bytes == len(file.data)

    @pytest.mark.parametrize("algo", ["snappy", "zstd"])
    def test_compressors_verify_suite_files(self, bench, algo):
        cdpu = repro.CdpuGenerator().generate(CdpuConfig())
        suite = bench.suite(algo, Operation.COMPRESS)
        pipeline = cdpu.pipeline(algo, Operation.COMPRESS)
        for file in sorted(suite.files, key=len)[:5]:
            pipeline.run(file.data, verify=True)


class TestRuntimeReconfiguration:
    def test_runtime_history_shrink_without_rebuild(self):
        """§5.8: history window is RunT-configurable — shrinking it on the
        same 'hardware' only changes behaviour, never correctness."""
        cdpu = repro.CdpuGenerator()
        data = b"runtime reconfig " * 500
        for sram in (65536, 8192, 2048):
            config = CdpuConfig(encoder_history_bytes=sram)
            pipeline = cdpu.generate(config).pipeline("snappy", Operation.COMPRESS)
            pipeline.run(data, verify=True)

    def test_algorithm_subset_instances(self):
        snappy_only = repro.CdpuGenerator().generate(
            CdpuConfig(algorithms=frozenset({"snappy"}))
        )
        assert len(snappy_only.pipelines) == 2


class TestXeonVsCdpuConsistency:
    def test_speedups_are_end_to_end_times(self, dse_runner):
        point = dse_runner.evaluate(CdpuConfig(), "snappy", Operation.DECOMPRESS)
        assert point.speedup == pytest.approx(point.accel_gbps / point.xeon_gbps, rel=1e-6)
