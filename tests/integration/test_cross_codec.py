"""Cross-codec differential tests over the synthetic corpora.

Every codec must round-trip every corpus source, and the §2.2 taxonomy must
hold *behaviourally*: heavyweight codecs buy ratio with effort, lightweight
codecs stay cheap, and relative orderings match the fleet's Figure 2c
structure on compressible data.
"""

import pytest

from repro.algorithms.base import Operation, WeightClass
from repro.algorithms.registry import available_codecs, get_codec
from repro.corpus.sources import SOURCES


@pytest.fixture(scope="module")
def corpus_samples():
    return {name: fn(11, 12_000) for name, fn in SOURCES.items()}


@pytest.mark.parametrize("codec_name", available_codecs())
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_every_codec_roundtrips_every_source(codec_name, source_name, corpus_samples):
    codec = get_codec(codec_name)
    data = corpus_samples[source_name]
    assert codec.decompress(codec.compress(data)) == data


class TestTaxonomyBehaviour:
    def test_best_heavyweight_beats_best_lightweight_on_text(self, corpus_samples):
        data = corpus_samples["text"]
        heavy = min(
            len(get_codec(n).compress(data))
            for n in available_codecs()
            if get_codec(n).info.weight_class is WeightClass.HEAVYWEIGHT
        )
        light = min(
            len(get_codec(n).compress(data))
            for n in available_codecs()
            if get_codec(n).info.weight_class is WeightClass.LIGHTWEIGHT
        )
        assert heavy < light

    def test_ratio_ordering_on_logs_matches_fleet_structure(self, corpus_samples):
        """Fig 2c structure: zstd >= snappy on structured data."""
        data = corpus_samples["log"]
        zstd = len(get_codec("zstd").compress(data, level=3))
        snappy = len(get_codec("snappy").compress(data))
        assert zstd < snappy

    def test_gipfeli_entropy_stage_pays_off_on_literal_heavy_data(self):
        """§2.2: Gipfeli adds simple entropy coding over Snappy's design; on
        match-poor low-entropy data (wide alphabet, no repeats) that stage is
        the difference, while heavyweight entropy coding does at least as
        well."""
        import random

        rng = random.Random(13)
        data = bytes(rng.choice(b"abcdefghijklmnopqrstuvwx") for _ in range(12_000))
        sizes = {
            n: len(get_codec(n).compress(data)) for n in ("snappy", "gipfeli", "zstd")
        }
        assert sizes["gipfeli"] < sizes["snappy"]
        assert sizes["zstd"] <= sizes["gipfeli"] * 1.05

    def test_no_codec_expands_structured_data(self, corpus_samples):
        # Graph codecs are domain-specialized; on mismatched data their raw
        # escape bounds expansion to the fixed frame overhead rather than
        # guaranteeing a win, so they get the relaxed bound below.
        for name in available_codecs():
            for source in ("text", "log", "json", "repetitive"):
                data = corpus_samples[source]
                compressed = len(get_codec(name).compress(data))
                if name.startswith("graph-"):
                    assert compressed <= len(data) + 24, (name, source)
                else:
                    assert compressed < len(data), (name, source)

    def test_random_data_bounded_expansion_everywhere(self, corpus_samples):
        data = corpus_samples["random"]
        for name in available_codecs():
            assert len(get_codec(name).compress(data)) <= len(data) * 1.16 + 64, name


class TestOutputsAreDisjoint:
    def test_magic_bytes_unique(self, corpus_samples):
        # Graph presets share one frame family on purpose (the pipeline
        # lives in the frame's descriptor table), so they count as a single
        # GRPH header; every other codec's magic must be distinct.
        data = corpus_samples["text"][:2000]
        headers = {
            name: get_codec(name).compress(data)[:4] for name in available_codecs()
        }
        graph_headers = {h for n, h in headers.items() if n.startswith("graph-")}
        assert graph_headers == {b"GRPH"}
        other_headers = [h for n, h in headers.items() if not n.startswith("graph-")]
        assert len(set(other_headers)) == len(other_headers)
        assert b"GRPH" not in other_headers


class TestHardwarePipelinesOnCorpus:
    @pytest.mark.parametrize("source_name", ["text", "log", "random", "repetitive"])
    def test_snappy_pipeline_verifies_on_all_sources(self, corpus_samples, source_name):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig

        cdpu = CdpuGenerator().generate(CdpuConfig())
        data = corpus_samples[source_name]
        cdpu.pipeline("snappy", Operation.COMPRESS).run(data, verify=True)
        stream = get_codec("snappy").compress(data)
        cdpu.pipeline("snappy", Operation.DECOMPRESS).run(stream, verify=True)

    @pytest.mark.parametrize("source_name", ["json", "dna", "mixed"])
    def test_zstd_pipeline_verifies_on_all_sources(self, corpus_samples, source_name):
        from repro.core.generator import CdpuGenerator
        from repro.core.params import CdpuConfig

        cdpu = CdpuGenerator().generate(CdpuConfig())
        data = corpus_samples[source_name]
        cdpu.pipeline("zstd", Operation.COMPRESS).run(data, verify=True)
        stream = get_codec("zstd").compress(data)
        cdpu.pipeline("zstd", Operation.DECOMPRESS).run(stream, verify=True)
