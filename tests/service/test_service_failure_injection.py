"""Failure injection at the serving boundary: damaged payloads, live pools.

The runtime counterpart of the dispatcher's typed-error contract: for any
havoc-mutated decompress payload, the service returns an ``ok=False``
response whose error is a :class:`~repro.common.errors.ReproError` subclass
(or, for the unchecksummed raw Snappy wire format, a "successful" decode of
wrong bytes — the documented detection gap). What must *never* happen:

* a raw ``IndexError``/``struct.error``/``MemoryError`` escaping ``submit``,
* a worker process dying and taking the lane down,
* a deadlock (every response arrives within the guard timeout).

One service instance and one event loop persist across *all* hypothesis
examples and codecs — hammering a single set of worker processes with
hundreds of corrupt frames is the point; a fresh pool per example would
reset exactly the state this suite tries to poison.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import Operation
from repro.algorithms.registry import available_codecs, get_codec
from repro.common.errors import ReproError
from repro.service import CompressionService, ServiceConfig

PAYLOAD = (
    b"serving-tier failure injection payload: structured, repetitive, and "
    b"long enough to exercise matches and entropy tables. " * 12
)

TIMEOUT_SECONDS = 60.0

_FRAMES = {name: get_codec(name).compress(PAYLOAD) for name in available_codecs()}


@pytest.fixture(scope="module")
def live_service():
    """One loop + one started service shared by every example in the module."""
    loop = asyncio.new_event_loop()
    service = CompressionService(ServiceConfig(workers=1, max_batch=4))
    loop.run_until_complete(service.start())
    yield loop, service
    loop.run_until_complete(service.close())
    loop.close()


def _submit(loop, service, codec_name: str, operation: Operation, payload: bytes):
    request = service.make_request(codec_name, operation, payload)
    return loop.run_until_complete(
        asyncio.wait_for(service.submit(request), TIMEOUT_SECONDS)
    )


def _havoc(data, base: bytes) -> bytes:
    """A short random edit script (truncate/flip/insert/delete) over ``base``."""
    buf = bytearray(base)
    ops = data.draw(
        st.lists(
            st.sampled_from(["truncate", "flip", "insert", "delete"]),
            min_size=1,
            max_size=4,
        ),
        label="ops",
    )
    for op in ops:
        if not buf:
            break
        pos = data.draw(st.integers(0, len(buf) - 1), label=f"{op}-pos")
        if op == "truncate":
            del buf[pos:]
        elif op == "flip":
            buf[pos] ^= data.draw(st.integers(1, 255), label="flip-mask")
        elif op == "insert":
            buf.insert(pos, data.draw(st.integers(0, 255), label="insert-byte"))
        else:
            del buf[pos]
    return bytes(buf)


@pytest.mark.parametrize("codec_name", available_codecs())
class TestServiceUnderCorruption:
    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_corrupt_decompress_yields_only_typed_errors(
        self, codec_name, live_service, data
    ):
        loop, service = live_service
        stream = _havoc(data, _FRAMES[codec_name])
        response = _submit(loop, service, codec_name, Operation.DECOMPRESS, stream)
        if response.ok:
            # Unchecksummed wire formats may decode damaged bytes "cleanly";
            # the contract is only that nothing leaks and nothing hangs.
            assert isinstance(response.payload, bytes)
        else:
            assert isinstance(response.error, ReproError)
            assert type(response.error).__module__ == "repro.common.errors"
            with pytest.raises(ReproError):
                response.result_bytes()

    def test_lane_still_serves_after_corruption_barrage(
        self, codec_name, live_service
    ):
        """Ordered after the fuzz case: the same pool must still round-trip."""
        loop, service = live_service
        response = _submit(
            loop, service, codec_name, Operation.DECOMPRESS, _FRAMES[codec_name]
        )
        assert response.ok and response.result_bytes() == PAYLOAD


def test_error_and_success_mixed_in_one_batch(live_service):
    """A batch mixing poison and valid items resolves each independently."""
    loop, service = live_service
    frame = _FRAMES["zstd"]
    poison = frame[: len(frame) // 2]

    async def scenario():
        requests = [
            service.make_request("zstd", Operation.DECOMPRESS, payload)
            for payload in (frame, poison, frame, poison)
        ]
        return await asyncio.wait_for(
            asyncio.gather(*[service.submit(r) for r in requests]),
            TIMEOUT_SECONDS,
        )

    good0, bad1, good2, bad3 = loop.run_until_complete(scenario())
    assert good0.ok and good0.result_bytes() == PAYLOAD
    assert good2.ok and good2.result_bytes() == PAYLOAD
    for bad in (bad1, bad3):
        assert not bad.ok
        assert isinstance(bad.error, ReproError)
