"""Dispatcher semantics: batching, admission control, lifecycle, typed errors.

These are the contract tests for :class:`repro.service.CompressionService`
itself — no load harness, no simulator. Each test drives the service on its
own event loop via ``asyncio.run`` so lifecycle bugs (lingering drainers,
un-shut pools) surface as hangs or warnings here, not in later suites.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.algorithms.base import Operation
from repro.algorithms.registry import get_codec
from repro.common.errors import (
    ConfigError,
    CorruptStreamError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.service import CompressionService, ServiceConfig

PAYLOAD = b"dispatcher contract payload: small, repetitive, compressible. " * 8

#: Generous guard so a deadlocked lane fails the test instead of the run.
TIMEOUT_SECONDS = 60.0


def run_service(coro_fn, config: ServiceConfig):
    """Start a service, run ``coro_fn(service)`` with a deadlock guard."""

    async def _main():
        async with CompressionService(config) as service:
            return await asyncio.wait_for(coro_fn(service), TIMEOUT_SECONDS)

    return asyncio.run(_main())


def test_batching_coalesces_a_burst():
    config = ServiceConfig(workers=1, max_batch=8, batching=True)

    async def scenario(service):
        requests = [
            service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
            for _ in range(16)
        ]
        responses = await asyncio.gather(*[service.submit(r) for r in requests])
        assert all(r.ok for r in responses)
        return service.max_batch_observed("snappy"), responses

    observed, responses = run_service(scenario, config)
    # A single-worker lane with 16 queued requests must coalesce at least
    # once; no batch may exceed the configured bound.
    assert observed >= 2
    assert all(1 <= r.batch_size <= 8 for r in responses)


def test_batching_disabled_pins_batch_to_one():
    config = ServiceConfig(workers=1, max_batch=8, batching=False)

    async def scenario(service):
        requests = [
            service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
            for _ in range(6)
        ]
        responses = await asyncio.gather(*[service.submit(r) for r in requests])
        return service.max_batch_observed("snappy"), responses

    observed, responses = run_service(scenario, config)
    assert observed == 1
    assert all(r.batch_size == 1 for r in responses)


def test_admission_control_sheds_beyond_depth():
    """A synchronous burst against a depth-2 lane admits exactly 2 requests.

    ``submit`` increments the outstanding counter before its first await, so
    admission decisions for a same-tick burst are deterministic: the first
    ``max_queue_depth`` submissions are admitted, the rest shed with the
    typed overload error, and every admitted request still completes.
    """
    config = ServiceConfig(workers=1, max_batch=1, batching=False, max_queue_depth=2)

    async def scenario(service):
        outcomes = await asyncio.gather(
            *[
                service.submit(
                    service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
                )
                for _ in range(10)
            ],
            return_exceptions=True,
        )
        return outcomes

    outcomes = run_service(scenario, config)
    shed = [o for o in outcomes if isinstance(o, ServiceOverloadError)]
    completed = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(shed) == 8
    assert len(completed) == 2
    assert all(r.ok for r in completed)
    assert not any(
        isinstance(o, BaseException) and not isinstance(o, ServiceOverloadError)
        for o in outcomes
    )


def test_unknown_codec_is_a_config_error():
    config = ServiceConfig(workers=1)

    async def scenario(service):
        with pytest.raises(ConfigError, match="unknown codec"):
            await service.submit(
                service.make_request("no-such-codec", Operation.COMPRESS, b"x")
            )
        return True

    assert run_service(scenario, config)


def test_submit_outside_lifetime_raises_closed():
    async def _main():
        service = CompressionService(ServiceConfig(workers=1))
        with pytest.raises(ServiceClosedError):
            await service.submit(
                service.make_request("snappy", Operation.COMPRESS, b"x")
            )

    asyncio.run(_main())


def test_codec_error_comes_back_typed_and_service_survives():
    config = ServiceConfig(workers=1, max_batch=4)
    garbage = b"\xff\xfe definitely not a zstd frame \x00\x01"

    async def scenario(service):
        bad = await service.submit(
            service.make_request("zstd", Operation.DECOMPRESS, garbage)
        )
        assert not bad.ok
        assert isinstance(bad.error, ReproError)
        assert isinstance(bad.error, CorruptStreamError)
        with pytest.raises(CorruptStreamError):
            bad.result_bytes()
        # The lane and its pool must keep serving after an error response.
        frame = get_codec("zstd").compress(PAYLOAD)
        good = await service.submit(
            service.make_request("zstd", Operation.DECOMPRESS, frame)
        )
        assert good.ok and good.result_bytes() == PAYLOAD
        return True

    assert run_service(scenario, config)


def test_request_ids_are_monotonic():
    config = ServiceConfig(workers=1)

    async def scenario(service):
        ids = [
            service.make_request("snappy", Operation.COMPRESS, b"x").request_id
            for _ in range(5)
        ]
        assert ids == sorted(ids) and len(set(ids)) == 5
        return True

    assert run_service(scenario, config)


def test_config_validation():
    with pytest.raises(ConfigError):
        ServiceConfig(max_batch=0)
    with pytest.raises(ConfigError):
        ServiceConfig(max_queue_depth=0)
    with pytest.raises(ConfigError):
        ServiceConfig(linger_seconds=-0.1)


# A linger long enough that any accidental full-linger sleep blows the
# elapsed-time assertions below by an order of magnitude.
LONG_LINGER = 30.0


def test_full_batch_dispatches_without_lingering():
    """Regression: a batch already at ``max_batch`` must not sleep the linger."""
    config = ServiceConfig(
        workers=1, max_batch=4, batching=True, linger_seconds=LONG_LINGER
    )

    async def scenario(service):
        loop = asyncio.get_running_loop()
        begin = loop.time()
        requests = [
            service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
            for _ in range(8)
        ]
        responses = await asyncio.gather(*[service.submit(r) for r in requests])
        elapsed = loop.time() - begin
        assert all(r.ok for r in responses)
        return elapsed

    elapsed = run_service(scenario, config)
    # Two full batches of 4; with the bug this takes >= one 30s linger.
    assert elapsed < LONG_LINGER / 2, f"full batches lingered ({elapsed:.1f}s)"


def test_close_interrupts_linger():
    """Regression: a closing lane must not hold its last batch for the linger."""
    config = ServiceConfig(
        workers=1, max_batch=8, batching=True, linger_seconds=LONG_LINGER
    )

    async def _main():
        loop = asyncio.get_event_loop()
        begin = loop.time()
        async with CompressionService(config) as service:
            request = service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
            task = asyncio.create_task(service.submit(request))
            # Let the drainer pick the request up and enter its linger wait;
            # __aexit__ then closes the lane, which must cut the wait short.
            await asyncio.sleep(0.2)
        response = await asyncio.wait_for(task, TIMEOUT_SECONDS)
        assert response.ok
        return loop.time() - begin

    elapsed = asyncio.run(_main())
    assert elapsed < LONG_LINGER / 2, f"close waited out the linger ({elapsed:.1f}s)"


def test_linger_coalesces_staggered_arrivals():
    """A short linger holds an underfull batch open for late arrivals."""
    config = ServiceConfig(
        workers=1, max_batch=8, batching=True, linger_seconds=2.0
    )

    async def scenario(service):
        first = service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
        task = asyncio.create_task(service.submit(first))
        await asyncio.sleep(0.2)  # arrives well inside the linger window
        second = await service.submit(
            service.make_request("snappy", Operation.COMPRESS, PAYLOAD)
        )
        first_response = await task
        return first_response, second

    first_response, second = run_service(scenario, config)
    assert first_response.ok and second.ok
    assert first_response.batch_size == 2
    assert second.batch_size == 2
