"""Sim-validation: the queueing model's predictions vs the live service.

The closing of the loop ISSUE 7 asks for: the identical workload a live
:class:`~repro.service.ServiceHarness` run served is replayed through
:func:`repro.sim.queueing.simulate` and the predictions must agree with the
measurements within the stated :class:`~repro.service.SimTolerance`. The
comparison (both modes, predicted and measured side by side) is written to
``results/service_sim_validation.json`` as a reviewable artifact.

Single codec, one worker, batching off: that configuration *is* the sim's
single-lane FIFO station, so replay-mode disagreement would be a genuine
queueing-dynamics modelling error, not an abstraction gap.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.service import (
    ServiceConfig,
    ServiceHarness,
    WorkloadSpec,
    validate_against_sim,
)

RESULTS_DIR = Path(__file__).resolve().parents[2] / "results"

SPEC = WorkloadSpec(
    seed=7,
    num_calls=80,
    algorithms=("snappy",),
    max_payload_bytes=2048,
)
CONFIG = ServiceConfig(workers=1, batching=False, max_queue_depth=10_000)
TARGET_UTILIZATION = 0.6


@pytest.fixture(scope="module")
def served():
    """One calibrated live run shared by the agreement and artifact tests."""
    harness = ServiceHarness(SPEC, CONFIG)
    harness.calibrate_time_scale(TARGET_UTILIZATION)
    trace = harness.effective_trace()
    report = harness.run(verify=True)
    return harness, trace, report


def test_workload_preparation_is_deterministic():
    """Same spec -> byte-identical offered workload, run to run."""
    first = ServiceHarness(SPEC, CONFIG).prepare()
    second = ServiceHarness(SPEC, CONFIG).prepare()
    assert [(p.algorithm, p.operation, p.payload, p.expected) for p in first] == [
        (p.algorithm, p.operation, p.payload, p.expected) for p in second
    ]
    assert [p.arrival_time for p in first] == [p.arrival_time for p in second]


def test_live_run_completes_and_conforms(served):
    _harness, _trace, report = served
    assert report.offered == SPEC.num_calls
    assert report.failed == 0
    assert report.completed + report.shed == report.offered
    ok_records = [r for r in report.records if r.status == "ok"]
    assert ok_records, "calibrated run completed nothing"
    assert all(r.conforms for r in ok_records)


def test_predictions_agree_within_tolerance(served):
    _harness, trace, report = served
    validation = validate_against_sim(report, trace)
    assert validation.lanes == 1
    assert validation.calls == report.completed
    assert validation.agrees, (
        "sim replay disagrees with live measurements:\n"
        + validation.render_human()
    )


def test_validation_artifact_records_both_sides(served):
    _harness, trace, report = served
    validation = validate_against_sim(report, trace)
    payload = {
        "load_report": report.to_payload(),
        "sim_validation": validation.to_payload(),
        "target_utilization": TARGET_UTILIZATION,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "service_sim_validation.json"
    artifact.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    written = json.loads(artifact.read_text())
    replay = written["sim_validation"]["replay"]
    for metric in (
        "utilization",
        "mean_wait_seconds",
        "p50_sojourn_seconds",
        "p99_sojourn_seconds",
    ):
        assert "measured" in replay[metric] and "predicted" in replay[metric]
    assert written["sim_validation"]["agrees"] is True


def test_validation_rejects_mismatched_trace(served):
    _harness, trace, report = served
    with pytest.raises(ConfigError, match="records"):
        validate_against_sim(report, trace[:-1])
