"""Serving conformance: responses are byte-identical to one-shot codec calls.

The service is a *transport*, not a transform: for every registered codec,
any payload served through the dispatcher — across worker counts and with
batching on or off — must return exactly the bytes
``codec.compress(payload)`` / ``codec.decompress(frame)`` would. This is
the §3.4 stable-API contract extended to the serving tier.

All requests for one configuration go through a single service instance and
are submitted concurrently, so the batcher genuinely coalesces and the
per-request fan-back is what's under test (a mis-zipped batch would hand
request A request B's bytes — precisely the bug class this suite exists
to catch).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.algorithms.base import Operation
from repro.algorithms.registry import available_codecs, get_codec
from repro.service import CompressionService, ServiceConfig

TIMEOUT_SECONDS = 300.0

#: Span the awkward cases: empty input, sub-preamble sizes, text runs,
#: incompressible-ish structure. Kept small — 7 pure-python codecs ×
#: 4 configurations run on a single CI core.
PAYLOADS = (
    b"",
    b"x",
    b"abc",
    b"ab" * 700,
    b"the quick brown fox jumps over the lazy dog; " * 30,
    bytes(range(256)) * 3,
)

CONFIGURATIONS = [
    pytest.param(1, True, id="workers1-batched"),
    pytest.param(1, False, id="workers1-unbatched"),
    pytest.param(4, True, id="workers4-batched"),
    pytest.param(4, False, id="workers4-unbatched"),
]


def _expected_outputs():
    """One-shot oracle: (codec, op, payload) -> expected bytes."""
    oracle = {}
    for name in available_codecs():
        codec = get_codec(name)
        for payload in PAYLOADS:
            frame = codec.compress(payload)
            oracle[(name, Operation.COMPRESS, payload)] = frame
            oracle[(name, Operation.DECOMPRESS, frame)] = payload
    return oracle


@pytest.fixture(scope="module")
def oracle():
    return _expected_outputs()


def test_matrix_covers_graph_presets(oracle):
    """Graph codecs register like any other codec, so the conformance
    matrix must pick them up — workers resolve them by name, proving the
    GRPH frame family survives workers × batching byte-identically."""
    graph_codecs = {name for name, _op, _payload in oracle if name.startswith("graph-")}
    assert "graph-delta-fse" in graph_codecs
    assert len(graph_codecs) >= 3


@pytest.mark.parametrize("workers,batching", CONFIGURATIONS)
def test_served_bytes_match_one_shot(workers, batching, oracle):
    config = ServiceConfig(
        workers=workers, batching=batching, max_batch=4, max_queue_depth=10_000
    )
    cases = sorted(oracle.items(), key=lambda kv: (kv[0][0], kv[0][1].value))

    async def _main():
        async with CompressionService(config) as service:
            requests = [
                service.make_request(name, operation, payload)
                for (name, operation, payload), _expected in cases
            ]
            return await asyncio.wait_for(
                asyncio.gather(*[service.submit(r) for r in requests]),
                TIMEOUT_SECONDS,
            )

    responses = asyncio.run(_main())
    for ((name, operation, _payload), expected), response in zip(cases, responses):
        assert response.ok, (
            f"{name} {operation.value} failed in service: {response.error}"
        )
        assert response.result_bytes() == expected, (
            f"{name} {operation.value} served bytes diverge from one-shot"
        )
        assert response.codec == name and response.operation is operation
