"""Pacing-calibration guards: degenerate measured service times must not
produce an absurd time scale.

``ServiceHarness.calibrate_time_scale`` divides by the measured mean one-shot
service time; on a fast machine with tiny payloads that measurement can
collapse toward (or, with a broken clock, to) zero. Zero/negative now raises
``ConfigError``; tiny-but-positive values clamp to
``MIN_CALIBRATION_SERVICE_SECONDS`` so the derived arrival rate stays finite
and sane.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.service import ServiceConfig, ServiceHarness, WorkloadSpec
from repro.service.harness import MIN_CALIBRATION_SERVICE_SECONDS

SPEC = WorkloadSpec(seed=3, num_calls=20, algorithms=("snappy",), max_payload_bytes=1024)


def make_harness() -> ServiceHarness:
    harness = ServiceHarness(SPEC, ServiceConfig(workers=1))
    harness.prepare()
    return harness


def test_zero_measured_service_time_raises():
    harness = make_harness()
    harness.library.mean_service_seconds = lambda: 0.0
    with pytest.raises(ConfigError, match="zero or negative"):
        harness.calibrate_time_scale(0.5)


def test_negative_measured_service_time_raises():
    harness = make_harness()
    harness.library.mean_service_seconds = lambda: -1e-9
    with pytest.raises(ConfigError, match="zero or negative"):
        harness.calibrate_time_scale(0.5)


def test_tiny_measured_service_time_clamps():
    tiny = make_harness()
    tiny.library.mean_service_seconds = lambda: 1e-15
    floor = make_harness()
    floor.library.mean_service_seconds = lambda: MIN_CALIBRATION_SERVICE_SECONDS
    tiny.calibrate_time_scale(0.5)
    floor.calibrate_time_scale(0.5)
    tiny_times = [p.arrival_time for p in tiny.prepare()]
    floor_times = [p.arrival_time for p in floor.prepare()]
    assert tiny_times == floor_times
    assert all(t >= 0 for t in tiny_times)


def test_normal_measurement_unaffected_by_guard():
    harness = make_harness()
    harness.library.mean_service_seconds = lambda: 0.004  # a realistic 4ms
    harness.calibrate_time_scale(0.5)
    times = [p.arrival_time for p in harness.prepare()]
    assert times == sorted(times)
    assert times[-1] > 0
