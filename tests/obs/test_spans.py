"""Span semantics: nesting, clock domains, disabled no-op, trace export."""

import json

import pytest

from repro import obs
from repro.obs.spans import (
    _NULL_SPAN,
    SPAN_BUFFER,
    VIRTUAL_PID,
    WALL_PID,
)
from repro.obs.trace import chrome_trace_events


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert obs.span("x") is _NULL_SPAN
        assert obs.stage("y") is _NULL_SPAN

    def test_nothing_buffered_while_disabled(self):
        with obs.span("x"):
            pass
        obs.virtual_span("v", 0.0, 1.0)
        assert len(SPAN_BUFFER) == 0


class TestWallSpans:
    def test_span_records_on_exit(self):
        obs.enable()
        with obs.span("codec.snappy.compress", category="codec"):
            pass
        records = SPAN_BUFFER.drain_view()
        assert len(records) == 1
        record = records[0]
        assert record.name == "codec.snappy.compress"
        assert record.category == "codec"
        assert record.pid == WALL_PID
        assert record.duration_us >= 0.0
        assert record.begin_us >= 0.0

    def test_nesting_tracks_depth_and_current_name(self):
        obs.enable()
        with obs.span("outer"):
            assert obs.current_span_name() == "outer"
            with obs.span("inner"):
                assert obs.current_span_name() == "inner"
            assert obs.current_span_name() == "outer"
        assert obs.current_span_name() is None
        by_name = {r.name: r for r in SPAN_BUFFER.drain_view()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_inner_span_is_contained_in_outer(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        by_name = {r.name: r for r in SPAN_BUFFER.drain_view()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.begin_us >= outer.begin_us
        assert inner.begin_us + inner.duration_us <= (
            outer.begin_us + outer.duration_us
        )

    def test_span_survives_exceptions_without_swallowing(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert [r.name for r in SPAN_BUFFER.drain_view()] == ["failing"]
        assert obs.current_span_name() is None

    def test_stage_also_feeds_timing_histogram(self):
        obs.enable()
        with obs.stage("stage.lz77.encode"):
            pass
        hist = obs.snapshot().histograms["stage.lz77.encode.seconds"]
        assert hist.count == 1
        assert hist.total >= 0.0


class TestVirtualSpans:
    def test_virtual_span_uses_sim_time_verbatim(self):
        obs.enable()
        obs.virtual_span("sim.snappy.decompress", 1.5, 2.0, track=3)
        (record,) = SPAN_BUFFER.drain_view()
        assert record.pid == VIRTUAL_PID
        assert record.tid == 3
        assert record.begin_us == pytest.approx(1.5e6)
        assert record.duration_us == pytest.approx(0.5e6)


class TestChromeTraceExport:
    def test_export_structure_loads_as_trace_json(self, tmp_path):
        obs.enable()
        with obs.span("wall.work", category="codec"):
            pass
        obs.virtual_span("sim.work", 0.0, 1.0, track=1)
        out = tmp_path / "trace.json"
        written = obs.export_chrome_trace(out)
        assert written == 2
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in complete} == {WALL_PID, VIRTUAL_PID}
        for event in complete:
            for key in ("name", "cat", "ts", "dur", "pid", "tid"):
                assert key in event

    def test_event_order_is_deterministic(self):
        obs.enable()
        obs.virtual_span("b", 2.0, 3.0, track=0)
        obs.virtual_span("a", 0.0, 1.0, track=0)
        events = chrome_trace_events(SPAN_BUFFER.drain_view())
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert names == ["a", "b"]

    def test_args_are_exported(self):
        obs.enable()
        obs.virtual_span("sized", 0.0, 1.0, args={"bytes": 42})
        events = chrome_trace_events(SPAN_BUFFER.drain_view())
        (event,) = [e for e in events if e["ph"] == "X"]
        assert event["args"] == {"bytes": 42}
