"""Metric registry semantics: counters, gauges, histograms, snapshots."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import REGISTRY, HistogramData, _bucket_index


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestDisabledPath:
    def test_disabled_helpers_record_nothing(self):
        obs.counter_add("c", 1)
        obs.gauge_set("g", 2.0)
        obs.histogram_observe("h", 3.0)
        snap = obs.snapshot()
        assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}

    def test_disabled_human_rendering_explains_itself(self):
        assert "enabled" in obs.snapshot().render_human()


class TestCounters:
    def test_accumulate(self):
        obs.enable()
        obs.counter_add("codec.x.calls", 1)
        obs.counter_add("codec.x.calls", 4)
        assert obs.snapshot().counter("codec.x.calls") == 5

    def test_missing_counter_reads_zero(self):
        obs.enable()
        assert obs.snapshot().counter("nope") == 0

    def test_gauge_overwrites(self):
        obs.enable()
        obs.gauge_set("dse.queue.depth", 7)
        obs.gauge_set("dse.queue.depth", 0)
        assert obs.snapshot().gauges["dse.queue.depth"] == 0


class TestHistograms:
    def test_observe_tracks_count_total_extremes(self):
        obs.enable()
        for value in (1.0, 2.0, 4.0):
            obs.histogram_observe("h", value)
        snap = obs.snapshot()
        hist = snap.histograms["h"]
        assert hist.count == 3
        assert hist.total == pytest.approx(7.0)
        assert hist.minimum == pytest.approx(1.0)
        assert hist.maximum == pytest.approx(4.0)
        assert hist.mean == pytest.approx(7.0 / 3.0)

    def test_bucket_index_is_log2_monotone(self):
        values = [1e-9, 1e-6, 1e-3, 1.0, 1e3]
        indices = [_bucket_index(v) for v in values]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_empty_histogram_mean_is_zero(self):
        assert HistogramData().mean == 0.0


class TestSnapshot:
    def test_json_is_deterministic_and_sorted(self):
        obs.enable()
        obs.counter_add("b", 2)
        obs.counter_add("a", 1)
        obs.histogram_observe("h", 0.5)
        first = obs.snapshot().to_json()
        second = obs.snapshot().to_json()
        assert first == second
        payload = json.loads(first)
        assert list(payload["counters"]) == ["a", "b"]

    def test_snapshot_is_a_point_in_time_copy(self):
        obs.enable()
        obs.counter_add("c", 1)
        snap = obs.snapshot()
        obs.counter_add("c", 1)
        assert snap.counter("c") == 1

    def test_reset_clears_everything(self):
        obs.enable()
        obs.counter_add("c", 1)
        obs.histogram_observe("h", 1.0)
        obs.reset()
        snap = obs.snapshot()
        assert snap.counters == {} and snap.histograms == {}

    def test_human_rendering_mentions_each_metric(self):
        obs.enable()
        obs.counter_add("codec.zstd.compress.calls", 3)
        obs.gauge_set("dse.queue.depth", 1)
        obs.histogram_observe("stage.lz77.encode.seconds", 0.25)
        text = obs.snapshot().render_human()
        for name in (
            "codec.zstd.compress.calls",
            "dse.queue.depth",
            "stage.lz77.encode.seconds",
        ):
            assert name in text


class TestThreadSafety:
    def test_concurrent_counter_adds_do_not_lose_updates(self):
        obs.enable()
        per_thread = 2000

        def work():
            for _ in range(per_thread):
                REGISTRY.counter_add("t", 1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obs.snapshot().counter("t") == 4 * per_thread
