"""Integration: the hot layers actually report through repro.obs.

Covers the three instrumented surfaces from DESIGN.md "Observability":
codecs (byte/call counters + stage timings), the DSE engine (cache and
worker accounting), and the queueing simulator (virtual-time spans and
per-lane busy counters) — plus the ``repro stats`` CLI wiring.
"""

import json

import pytest

from repro import obs
from repro.algorithms.registry import get_codec
from repro.obs.spans import SPAN_BUFFER, VIRTUAL_PID

PAYLOAD = b"instrumentation payload: ripe for matching, " * 64


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestCodecInstrumentation:
    def test_roundtrip_reports_bytes_and_calls(self):
        obs.enable()
        codec = get_codec("snappy")
        compressed = codec.compress(PAYLOAD)
        codec.decompress(compressed)
        snap = obs.snapshot()
        assert snap.counter("codec.snappy.compress.calls") == 1
        assert snap.counter("codec.snappy.compress.bytes_in") == len(PAYLOAD)
        assert snap.counter("codec.snappy.compress.bytes_out") == len(compressed)
        assert snap.counter("codec.snappy.decompress.bytes_in") == len(compressed)
        assert snap.counter("codec.snappy.decompress.bytes_out") == len(PAYLOAD)

    def test_compress_emits_codec_span(self):
        obs.enable()
        get_codec("snappy").compress(PAYLOAD)
        names = [r.name for r in SPAN_BUFFER.drain_view()]
        assert "codec.snappy.compress" in names

    def test_stage_timings_recorded_for_entropy_codecs(self):
        obs.enable()
        codec = get_codec("zstd")
        codec.decompress(codec.compress(PAYLOAD))
        histograms = obs.snapshot().histograms
        assert any(name.startswith("stage.lz77.") for name in histograms)
        assert any(name.startswith("stage.crc32c") for name in histograms)

    def test_disabled_codec_records_nothing(self):
        codec = get_codec("snappy")
        codec.decompress(codec.compress(PAYLOAD))
        assert obs.snapshot().counters == {}
        assert len(SPAN_BUFFER) == 0

    def test_every_registered_codec_is_wrapped(self):
        from repro.algorithms.registry import available_codecs

        for name in available_codecs():
            codec = get_codec(name)
            assert getattr(type(codec).compress, "_obs_wrapped", False), name
            assert getattr(type(codec).decompress, "_obs_wrapped", False), name


class TestDseInstrumentation:
    def test_cache_miss_counted(self, tmp_path):
        from repro.dse.cache import DseCache

        obs.enable()
        cache = DseCache(tmp_path / "cache")
        assert cache.get("k" * 64) is None  # cold: miss
        assert obs.snapshot().counter("dse.cache.miss") == 1

    def test_evaluate_points_reports_cache_and_queue(self, dse_runner, tmp_path):
        from repro.algorithms.base import Operation
        from repro.core.params import CdpuConfig
        from repro.dse.cache import DseCache
        from repro.dse.parallel import evaluate_points
        from repro.dse.runner import DesignPoint

        obs.enable()
        points = [DesignPoint("snappy", Operation.DECOMPRESS, CdpuConfig())]
        cache = DseCache(tmp_path / "cache")
        evaluate_points(dse_runner, points, cache=cache)
        evaluate_points(dse_runner, points, cache=cache)
        snap = obs.snapshot()
        assert snap.counter("dse.cache.miss") == 1
        assert snap.counter("dse.cache.store") == 1
        assert snap.counter("dse.cache.hit") == 1
        assert snap.counter("dse.points.evaluated") == 1
        assert snap.counter("dse.points.from_cache") == 1
        assert snap.gauges["dse.queue.depth"] == 0
        assert any(
            name.startswith("dse.worker.pid") for name in snap.counters
        )
        names = [r.name for r in SPAN_BUFFER.drain_view()]
        assert "dse.evaluate_points" in names
        assert "dse.cache.probe" in names
        assert "dse.point.snappy.decompress" in names


class TestSimInstrumentation:
    def test_sim_emits_virtual_spans_and_lane_counters(self):
        from repro.algorithms.base import Operation
        from repro.sim.arrivals import CallArrival
        from repro.sim.queueing import ServiceModel, simulate

        obs.enable()
        trace = [
            CallArrival(i * 1e-6, "snappy", Operation.DECOMPRESS, 1000, 500)
            for i in range(10)
        ]
        service = ServiceModel(
            rates={("snappy", Operation.DECOMPRESS): 1e9}, per_call_seconds=0.0
        )
        simulate(trace, service, lanes=2)
        snap = obs.snapshot()
        assert snap.counter("sim.arrivals") == 10
        assert snap.counter("sim.departures") == 10
        assert snap.counter("sim.bytes_offered") == 10 * 1000
        assert snap.counter("sim.lane0.busy_seconds") > 0.0
        virtual = [r for r in SPAN_BUFFER.drain_view() if r.pid == VIRTUAL_PID]
        service_spans = [r for r in virtual if r.name == "sim.snappy.decompress"]
        assert len(service_spans) == 10
        # Virtual span timestamps are simulated seconds in microseconds.
        assert service_spans[0].duration_us == pytest.approx(1.0)


class TestStatsCli:
    def test_stats_roundtrip_reports_codec_counters(self, capsys):
        from repro.cli import main

        assert main(["stats", "--workload", "roundtrip", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["codec.snappy.compress.calls"] >= 1
        assert payload["counters"]["codec.zstd.decompress.calls"] >= 1

    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["--trace", str(out), "stats", "--workload", "roundtrip"]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert {"M", "X"} == {e["ph"] for e in payload["traceEvents"]}
