"""Tests for the runtime determinism sanitizer (repro.sanitize)."""

import sys

import pytest

from repro.sanitize.cli import main as sanitize_main
from repro.sanitize.diffing import first_divergence
from repro.sanitize.harness import (
    Variant,
    run_target,
    run_variant,
    variant_matrix,
)
from repro.sanitize.normalize import RULES, normalize
from repro.sanitize.selftest import PLANTED_WORKER_SOURCE, plant, run_selftest
from repro.sanitize.targets import TARGETS, SanitizeTarget


class TestNormalize:
    def test_obs_seconds_scrubbed_counts_kept(self):
        raw = (
            b'{"histograms":{"stage.lz77.encode.seconds":'
            b'{"buckets":{"-10":1,"-5":2},"count":3,"max":0.02,"mean":0.01,'
            b'"min":0.001,"total":0.03}}}'
        )
        scrubbed, counts = normalize(
            raw, ("obs-seconds-buckets", "obs-seconds-moments")
        )
        assert b'"buckets":{}' in scrubbed
        assert b'"count":3' in scrubbed
        assert b"0.02" not in scrubbed
        assert counts["obs-seconds-buckets"] == 1
        assert counts["obs-seconds-moments"] == 4

    def test_identical_inputs_normalize_identically(self):
        raw = b'{"max":0.5,"count":2}'
        a, _ = normalize(raw, ("obs-seconds-moments",))
        b, _ = normalize(raw, ("obs-seconds-moments",))
        assert a == b

    def test_binary_artifact_passes_through(self):
        raw = bytes(range(256))
        out, counts = normalize(raw, ("pid",))
        assert out == raw
        assert counts == {}

    def test_rule_names_are_known(self):
        for target in TARGETS.values():
            for name in target.normalizers:
                assert name in RULES

    def test_serve_target_covers_both_frame_families(self):
        # The sanitizers should exercise the composable graph decode path
        # (stage tables), not only monolithic frames.
        argv = TARGETS["serve"].argv
        codecs = argv[argv.index("--codecs") + 1].split(",")
        assert "snappy" in codecs
        assert "graph-delta-fse" in codecs


class TestDiffing:
    def test_equal_artifacts_no_divergence(self):
        assert first_divergence(b"abc\ndef\n", b"abc\ndef\n") is None

    def test_first_divergent_byte_located(self):
        div = first_divergence(b"line one\nline two\n", b"line one\nline 2wo\n")
        assert div is not None
        assert div.offset == 14
        assert div.line == 2
        assert div.column == 6
        assert "two" in div.context_a
        assert "2wo" in div.context_b

    def test_length_only_divergence_points_at_common_end(self):
        div = first_divergence(b"same", b"same-and-more")
        assert div is not None
        assert div.offset == 4

    def test_describe_names_both_variants(self):
        div = first_divergence(b"aXb", b"aYb")
        text = div.describe("seed0", "seed1")
        assert "seed0" in text and "seed1" in text and "offset 1" in text


class TestVariantMatrix:
    def test_default_matrix_is_hashseed_cross_jobs(self):
        matrix = variant_matrix()
        assert [v.name for v in matrix] == [
            "hashseed=0,jobs=1",
            "hashseed=0,jobs=4",
            "hashseed=1,jobs=1",
            "hashseed=1,jobs=4",
        ]
        assert matrix[0].env == {"PYTHONHASHSEED": "0", "REPRO_JOBS": "1"}

    def test_custom_axes(self):
        matrix = variant_matrix(hashseeds=(7,), jobs=(2,))
        assert [v.name for v in matrix] == ["hashseed=7,jobs=2"]


def _script_target(tmp_path, body: str, name: str = "t") -> SanitizeTarget:
    script = tmp_path / f"{name}.py"
    script.write_text(body, encoding="utf-8")
    return SanitizeTarget(
        name=name, description="fixture", argv=(), script=str(script)
    )


class TestHarness:
    def test_deterministic_script_passes(self, tmp_path):
        target = _script_target(tmp_path, "print('stable output')\n")
        report = run_target(target, variant_matrix())
        assert report.ok
        assert len(report.runs) == 4

    def test_hashseed_sensitive_script_diverges(self, tmp_path):
        target = _script_target(
            tmp_path,
            "print(list({'alpha','beta','gamma','delta','epsilon','zeta',"
            "'eta','theta','iota','kappa'}))\n",
        )
        report = run_target(target, variant_matrix())
        assert not report.ok
        assert report.divergence is not None
        base, other = report.blamed
        assert "hashseed=0" in base and "hashseed=1" in other

    def test_exit_status_divergence_reported(self, tmp_path):
        target = _script_target(
            tmp_path,
            "import os, sys\n"
            "sys.exit(1 if os.environ.get('PYTHONHASHSEED') == '1' else 0)\n",
        )
        report = run_target(target, variant_matrix())
        assert not report.ok
        assert "exit status diverged" in report.error

    def test_env_overlay_reaches_subprocess(self, tmp_path):
        target = _script_target(
            tmp_path,
            "import os\nprint(os.environ['REPRO_JOBS'])\n",
        )
        run = run_variant(target, Variant("j9", {"REPRO_JOBS": "9"}))
        assert run.artifact.startswith(b"9\n")


class TestSelfTest:
    def test_planted_worker_diverges_across_hashseeds(self):
        report = run_selftest()
        assert not report.ok, "harness failed to detect the planted bug"
        assert report.divergence is not None

    def test_plant_writes_script_and_shards(self, tmp_path):
        target = plant(tmp_path)
        assert (tmp_path / "planted_worker.py").read_text() == PLANTED_WORKER_SOURCE
        assert len(list((tmp_path / "data").glob("*.bin"))) == 16
        assert target.script.endswith("planted_worker.py")

    def test_planted_source_contains_both_hazards(self):
        # The string doubles as the R012 lint fixture: it must keep the
        # unsorted glob AND the set detour the rule advertises catching.
        assert "glob.glob" in PLANTED_WORKER_SOURCE
        assert "{" in PLANTED_WORKER_SOURCE


class TestCli:
    def test_list_targets(self, capsys):
        assert sanitize_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in TARGETS:
            assert name in out

    def test_unknown_target_is_usage_error(self, capsys):
        assert sanitize_main(["no-such-target"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_selftest_alone_passes_when_harness_detects(self, capsys):
        # Restrict to hashseed axis only (jobs don't matter for the plant)
        # and no real targets, keeping the test fast.
        assert (
            sanitize_main(
                ["--selftest", "--jobs-matrix", "1", "--hashseeds", "0,1", "stream"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "DIVERGED (expected)" in out
        assert "PASS  stream" in out


@pytest.mark.skipif(
    sys.platform.startswith("win"), reason="matrix timing tuned for POSIX CI"
)
class TestEndToEndTargets:
    def test_stream_target_bit_identical(self):
        report = run_target(TARGETS["stream"], variant_matrix(jobs=(1,)))
        assert report.ok, report.error or report.divergence
