"""Unit tests for dictionary compression (§3.4's 'separate dictionary')."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lz77 import Copy, Literal, decode_tokens
from repro.algorithms.zstd import ZstdCodec
from repro.algorithms.zstd_dict import ZstdDictCodec, strip_prefix_tokens, train_dictionary
from repro.common.errors import CorruptStreamError

RECORD = (
    b'{"user_id":12345,"operation":"read","status_code":200,"region":"us-east1",'
    b'"service":"storage-frontend","latency_us":'
)


def _record(i: int) -> bytes:
    return RECORD + str(100 + i * 7).encode() + b"}\n"


@pytest.fixture(scope="module")
def dictionary():
    return train_dictionary([_record(i) for i in range(50)], max_size=2048)


class TestStripPrefixTokens:
    def test_drop_trim_keep(self):
        tokens = [Literal(b"abcdef"), Copy(offset=3, length=6), Literal(b"xy")]
        stripped = strip_prefix_tokens(tokens, 8)
        # First literal gone (6 <= 8); copy trimmed from 6 to 4; literal kept.
        assert stripped[0] == Copy(offset=3, length=4)
        assert stripped[1] == Literal(b"xy")

    def test_literal_boundary_split(self):
        tokens = [Literal(b"0123456789")]
        assert strip_prefix_tokens(tokens, 4) == [Literal(b"456789")]

    def test_zero_prefix_identity(self):
        tokens = [Literal(b"ab"), Copy(offset=2, length=4)]
        assert strip_prefix_tokens(tokens, 0) == tokens

    def test_copy_suffix_semantics_preserved(self):
        # Full stream decodes to X; stripped stream must decode to X[p:]
        # when executed with X[:p] as preloaded history.
        data = b"abcabcabcabc"
        from repro.algorithms.lz77 import Lz77Encoder

        tokens = Lz77Encoder().encode(data).tokens
        for p in (0, 3, 5, 7):
            stripped = strip_prefix_tokens(tokens, p)
            # Execute with prefix seeded.
            out = bytearray(data[:p])
            for token in stripped:
                if isinstance(token, Literal):
                    out += token.data
                else:
                    start = len(out) - token.offset
                    for i in range(token.length):
                        out.append(out[start + i])
            assert bytes(out) == data, p


class TestDictCodec:
    def test_roundtrip(self, dictionary):
        codec = ZstdDictCodec(dictionary)
        payload = _record(999)
        assert codec.decompress(codec.compress(payload)) == payload

    def test_dictionary_improves_small_call_ratio(self, dictionary):
        """The point of dictionaries: small fleet calls compress far better."""
        payload = _record(4242)
        plain = len(ZstdCodec().compress(payload))
        with_dict = len(ZstdDictCodec(dictionary).compress(payload))
        assert with_dict < plain * 0.8

    def test_large_payload_roundtrip(self, dictionary):
        codec = ZstdDictCodec(dictionary)
        payload = b"".join(_record(i) for i in range(5000))  # multi-block
        assert codec.decompress(codec.compress(payload)) == payload

    def test_empty_payload(self, dictionary):
        codec = ZstdDictCodec(dictionary)
        assert codec.decompress(codec.compress(b"")) == b""

    def test_wrong_dictionary_rejected(self, dictionary):
        frame = ZstdDictCodec(dictionary).compress(_record(1))
        other = ZstdDictCodec(b"a completely different dictionary body")
        with pytest.raises(CorruptStreamError, match="different dictionary"):
            other.decompress(frame)

    def test_plain_decoder_rejects_dict_frames(self, dictionary):
        frame = ZstdDictCodec(dictionary).compress(_record(1))
        with pytest.raises(CorruptStreamError):
            ZstdCodec().decompress(frame)

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            ZstdDictCodec(b"")

    def test_truncation_detected(self, dictionary):
        frame = ZstdDictCodec(dictionary).compress(b"".join(_record(i) for i in range(50)))
        with pytest.raises(CorruptStreamError):
            ZstdDictCodec(dictionary).decompress(frame[:-4])

    def test_levels_respected(self, dictionary):
        codec = ZstdDictCodec(dictionary)
        payload = b"".join(_record(i) for i in range(200))
        for level in (-3, 3, 9):
            assert codec.decompress(codec.compress(payload, level=level)) == payload


class TestTrainDictionary:
    def test_size_bounded(self):
        dictionary = train_dictionary([_record(i) for i in range(20)], max_size=512)
        assert 0 < len(dictionary) <= 512

    def test_contains_common_substring(self):
        dictionary = train_dictionary([_record(i) for i in range(20)], max_size=4096)
        assert b"status_code" in dictionary or b"region" in dictionary

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            train_dictionary([])

    def test_unique_samples_still_produce_something(self):
        import random

        rng = random.Random(1)
        samples = [bytes(rng.getrandbits(8) for _ in range(64)) for _ in range(4)]
        assert train_dictionary(samples)


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_arbitrary_payloads(data):
    codec = ZstdDictCodec(RECORD * 4)
    assert codec.decompress(codec.compress(data)) == data
