"""Context reuse contract: ``reset()`` is indistinguishable from a fresh context.

The serving layer keeps one streaming context per (codec, op, level) across
batches (``service.workers.ContextCache``), so the whole scheme rests on two
properties pinned here:

* a ``reset()`` context produces byte-identical output to a fresh context,
  for every codec, both directions, across the golden chunk-size sweep
  {1, 7, 4096, whole}; and
* corruption poisoning survives reuse — a context that failed on a corrupt
  stream refuses ``reset()`` (and feed/flush) with ``StreamStateError``
  rather than silently recycling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import available_codecs, get_codec
from repro.common.errors import CorruptStreamError, StreamStateError

CODECS = sorted(available_codecs())

#: The golden-vector chunkings (None = the whole buffer in one feed).
CHUNK_SIZES = (1, 7, 4096, None)

BASE = (
    b"reusable contexts amortize setup across the fleet's small calls. " * 41
)


def run_stream(ctx, data: bytes, chunk_size):
    out = bytearray()
    if chunk_size is None:
        out += ctx.feed(data)
    else:
        for start in range(0, len(data), chunk_size):
            out += ctx.feed(data[start : start + chunk_size])
    out += ctx.flush()
    return bytes(out)


@pytest.mark.parametrize("codec_name", CODECS)
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_reset_compress_matches_fresh(codec_name, chunk_size):
    codec = get_codec(codec_name)
    ctx = codec.compress_context()
    first = run_stream(ctx, BASE, chunk_size)
    other = b"a different second stream " * 64
    ctx.reset()
    reused = run_stream(ctx, other, chunk_size)
    fresh = run_stream(codec.compress_context(), other, chunk_size)
    assert reused == fresh
    assert first == run_stream(codec.compress_context(), BASE, chunk_size)


@pytest.mark.parametrize("codec_name", CODECS)
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_reset_decompress_matches_fresh(codec_name, chunk_size):
    codec = get_codec(codec_name)
    frame_a = codec.compress(BASE)
    frame_b = codec.compress(b"another payload entirely " * 70)
    ctx = codec.decompress_context()
    assert run_stream(ctx, frame_a, chunk_size) == BASE
    ctx.reset()
    reused = run_stream(ctx, frame_b, chunk_size)
    fresh = run_stream(codec.decompress_context(), frame_b, chunk_size)
    assert reused == fresh


@pytest.mark.parametrize("codec_name", CODECS)
def test_reset_midstream_discards_partial_state(codec_name):
    codec = get_codec(codec_name)
    frame = codec.compress(BASE)
    ctx = codec.decompress_context()
    ctx.feed(frame[: len(frame) // 2])  # abandon a half-consumed stream
    ctx.reset()
    assert run_stream(ctx, frame, 97) == BASE


@pytest.mark.parametrize("codec_name", CODECS)
def test_reuse_after_corruption_raises(codec_name):
    codec = get_codec(codec_name)
    frame = bytearray(codec.compress(BASE))
    # Flip bits through the body; at least one mutation must be detected
    # (CRC trailers and structural checks make this certain in practice).
    ctx = codec.decompress_context()
    poisoned = False
    for pos in range(len(frame)):
        corrupt = bytes(frame[:pos]) + bytes([frame[pos] ^ 0xFF]) + bytes(
            frame[pos + 1 :]
        )
        ctx = codec.decompress_context()
        try:
            ctx.feed(corrupt)
            ctx.flush()
        except CorruptStreamError:
            poisoned = True
            break
    assert poisoned, f"{codec_name}: no corruption was detectable"
    with pytest.raises(StreamStateError):
        ctx.reset()
    with pytest.raises(StreamStateError):
        ctx.feed(b"more")
    with pytest.raises(StreamStateError):
        ctx.flush()


@settings(max_examples=12, deadline=None)
@given(
    data=st.binary(min_size=0, max_size=6000),
    codec_name=st.sampled_from(CODECS),
    chunk_size=st.sampled_from(CHUNK_SIZES),
)
def test_property_reset_roundtrip_identity(data, codec_name, chunk_size):
    codec = get_codec(codec_name)
    cctx = codec.compress_context()
    run_stream(cctx, BASE, None)
    cctx.reset()
    frame = run_stream(cctx, data, chunk_size)
    assert frame == codec.compress(data)
    dctx = codec.decompress_context()
    run_stream(dctx, codec.compress(BASE), None)
    dctx.reset()
    assert run_stream(dctx, frame, chunk_size) == data
