"""The incremental streaming contexts (repro.algorithms.streaming).

Covers the contract DESIGN.md's streaming section promises:

* feed/flush state machine — single-use contexts, ``StreamStateError`` on
  use-after-finish, corruption poisons the context;
* chunking-independence — output at any feed granularity is byte-identical
  to the one-shot path (golden-vector parity lives in
  ``test_golden_vectors.py``; here a hypothesis property covers arbitrary
  data and chunkings);
* bounded buffering — the ``bounded`` decompress contexts hold
  O(window + chunk) bytes even for a ≥64 MiB stream, and report it through
  ``max_buffered_bytes`` and the obs ``buffered_bytes`` gauge.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms.lz77 import Literal
from repro.algorithms.registry import available_codecs, get_codec
from repro.algorithms.snappy import SNAPPY_FRAME, SNAPPY_WINDOW, emit_elements
from repro.algorithms.streaming import (
    BufferedCompressContext,
    BufferedDecompressContext,
)
from repro.algorithms.zstd import BLOCK_SIZE
from repro.common.errors import CorruptStreamError, StreamStateError
from repro.common.units import KiB, MiB

PAYLOAD = (
    b"streaming payload with matches aplenty; streaming payload with "
    b"matches aplenty. " * 60
) + bytes(range(256))


def _feed_all(ctx, data: bytes, chunk_size: int) -> bytes:
    out = b"".join(
        ctx.feed(data[i : i + chunk_size]) for i in range(0, len(data), chunk_size)
    )
    return out + ctx.flush()


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestStateMachine:
    def test_context_is_single_use(self):
        ctx = get_codec("snappy").compress_context()
        ctx.feed(PAYLOAD)
        ctx.flush()
        assert ctx.finished
        with pytest.raises(StreamStateError):
            ctx.feed(b"more")
        with pytest.raises(StreamStateError):
            ctx.flush()

    def test_nonfinal_flush_keeps_context_open(self):
        codec = get_codec("snappy")
        frame = codec.compress(PAYLOAD)
        ctx = codec.decompress_context()
        half = len(frame) // 2
        out = ctx.feed(frame[:half])
        out += ctx.flush(end=False)
        assert not ctx.finished
        out += ctx.feed(frame[half:])
        out += ctx.flush()
        assert ctx.finished
        assert out == PAYLOAD

    def test_corruption_poisons_context(self):
        codec = get_codec("zstd")
        ctx = codec.decompress_context()
        with pytest.raises(CorruptStreamError):
            ctx.feed(b"not a zstd frame at all")
        assert not ctx.finished
        with pytest.raises(StreamStateError):
            ctx.feed(b"retry")
        with pytest.raises(StreamStateError):
            ctx.flush()

    def test_empty_feeds_are_harmless(self):
        codec = get_codec("lzo")
        frame = codec.compress(PAYLOAD)
        ctx = codec.decompress_context()
        out = ctx.feed(b"")
        out += ctx.feed(frame)
        out += ctx.feed(b"")
        out += ctx.flush()
        assert out == PAYLOAD

    @pytest.mark.parametrize("codec_name", available_codecs())
    def test_one_shot_equals_streaming_everywhere(self, codec_name):
        codec = get_codec(codec_name)
        one_shot = codec.compress(PAYLOAD)
        for chunk_size in (1, 333, 1 << 16):
            ctx = codec.compress_context()
            assert _feed_all(ctx, PAYLOAD, chunk_size) == one_shot
            dctx = codec.decompress_context()
            assert _feed_all(dctx, one_shot, chunk_size) == PAYLOAD


class TestChunkingIndependence:
    """Property: any chunking of any input matches the one-shot bytes."""

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.binary(max_size=4096),
        chunk_size=st.integers(min_value=1, max_value=512),
        codec_name=st.sampled_from(sorted(available_codecs())),
    )
    def test_streaming_equals_one_shot(self, data, chunk_size, codec_name):
        codec = get_codec(codec_name)
        one_shot = codec.compress(data)
        ctx = codec.compress_context()
        assert _feed_all(ctx, data, chunk_size) == one_shot
        dctx = codec.decompress_context()
        assert _feed_all(dctx, one_shot, chunk_size) == data


class TestBoundedBuffering:
    """bounded=True decompress contexts: O(window + chunk), never O(input)."""

    def test_bounded_flags_by_codec(self):
        bounded = {
            name: type(get_codec(name).decompress_context()).bounded
            for name in available_codecs()
        }
        # Element/block formats stream with bounded history; the monolithic
        # entropy-coded bodies legitimately buffer the whole frame. Graph
        # pipelines run whole-buffer transforms, so they buffer too.
        assert bounded == {
            "brotli": False,
            "flate": False,
            "gipfeli": False,
            "graph-delta-fse": False,
            "graph-float-fse": False,
            "graph-lz-huff": False,
            "graph-plane-fse": False,
            "graph-token-fse": False,
            "lzo": True,
            "snappy": True,
            "snappy-framed": True,
            "zstd": True,
        }
        assert type(get_codec("snappy-framed").compress_context()).bounded

    def test_snappy_64mib_stream_is_window_bounded(self):
        """Decompressing a ≥64 MiB stream holds O(window + chunk) bytes.

        The stream is synthesized element-by-element (a 64 KiB literal per
        feed) so the test never materializes the whole input either; the
        context's high-water mark must stay near window + chunk, about
        three orders of magnitude below the stream size.
        """
        block = bytes(range(256)) * 256  # 64 KiB
        element = emit_elements([Literal(block)])
        repeats = 1024  # 64 MiB of declared content
        total = repeats * len(block)
        ctx = get_codec("snappy").decompress_context()
        ctx.feed(SNAPPY_FRAME.encode_preamble(content_length=total))
        fed = produced = 0
        for index in range(repeats):
            out = ctx.feed(element)
            fed += len(element)
            produced += len(out)
            if index in (0, repeats - 1):
                assert out == block
        produced += len(ctx.flush())
        assert ctx.finished
        assert fed >= 64 * MiB
        assert produced == total
        # O(window + chunk): one retained window plus one in-flight element.
        assert ctx.max_buffered_bytes <= SNAPPY_WINDOW + 2 * len(element)

    def test_zstd_streaming_decompress_is_block_bounded(self):
        data = PAYLOAD * 80  # several 128 KiB blocks
        frame = get_codec("zstd").compress(data)
        ctx = get_codec("zstd").decompress_context()
        out = _feed_all(ctx, frame, 4 * KiB)
        assert out == data
        # Holds at most one undecoded block body plus the feed chunk.
        assert ctx.max_buffered_bytes <= 2 * BLOCK_SIZE + 4 * KiB

    def test_snappy_framed_bounded_both_directions(self):
        data = PAYLOAD * 40
        cctx = get_codec("snappy-framed").compress_context()
        frame = _feed_all(cctx, data, 8 * KiB)
        # The compressor holds less than one 64 KiB chunk of input.
        assert cctx.max_buffered_bytes < 64 * KiB + 8 * KiB
        dctx = get_codec("snappy-framed").decompress_context()
        assert _feed_all(dctx, frame, 8 * KiB) == data
        # The decompressor holds at most one in-flight chunk.
        assert dctx.max_buffered_bytes < 2 * (64 * KiB + 8 * KiB)

    def test_lzo_streaming_history_is_format_bounded(self):
        data = PAYLOAD * 120
        frame = get_codec("lzo").compress(data)
        ctx = get_codec("lzo").decompress_context()
        assert _feed_all(ctx, frame, 4 * KiB) == data
        from repro.algorithms.lzo import _MAX_COPY_OFFSET

        assert ctx.max_buffered_bytes <= _MAX_COPY_OFFSET + 8 * KiB


class TestStreamingObservability:
    def test_stream_counters_and_gauge(self):
        obs.enable()
        codec = get_codec("snappy")
        frame = codec.compress(PAYLOAD)
        obs.reset()
        ctx = codec.decompress_context()
        gauge_max = 0
        for i in range(0, len(frame), 100):
            ctx.feed(frame[i : i + 100])
            gauges = obs.snapshot().gauges
            gauge_max = max(
                gauge_max,
                gauges.get("codec.snappy.stream.decompress.buffered_bytes", 0),
            )
        ctx.flush()
        snap = obs.snapshot()
        feeds = -(-len(frame) // 100)
        assert snap.counter("codec.snappy.stream.decompress.feed.calls") == feeds
        assert snap.counter("codec.snappy.stream.decompress.bytes_in") == len(frame)
        assert snap.counter("codec.snappy.stream.decompress.bytes_out") == len(PAYLOAD)
        assert snap.counter("codec.snappy.stream.decompress.flush.calls") == 1
        # The gauge tracked real buffering while the stream was in flight.
        assert 0 < gauge_max <= ctx.max_buffered_bytes
        assert (
            snap.gauges["codec.snappy.stream.decompress.buffered_bytes"]
            <= gauge_max
        )

    def test_one_shot_wrappers_still_report_per_codec(self):
        obs.enable()
        codec = get_codec("gipfeli")
        codec.decompress(codec.compress(PAYLOAD))
        snap = obs.snapshot()
        assert snap.counter("codec.gipfeli.compress.calls") == 1
        assert snap.counter("codec.gipfeli.decompress.calls") == 1

    def test_disabled_obs_records_nothing(self):
        codec = get_codec("snappy")
        ctx = codec.decompress_context()
        _feed_all(ctx, codec.compress(PAYLOAD), 512)
        assert obs.snapshot().counters == {}


class TestBufferedFallbackContexts:
    """The generic buffered contexts used by monolithic-frame codecs."""

    def test_buffered_contexts_report_pending_input(self):
        codec = get_codec("flate")
        ctx = codec.compress_context()
        assert isinstance(ctx, BufferedCompressContext)
        ctx.feed(b"x" * 1000)
        assert ctx.buffered_bytes == 1000
        ctx.feed(b"y" * 500)
        assert ctx.buffered_bytes == 1500
        frame = ctx.flush()
        assert ctx.buffered_bytes == 0
        dctx = codec.decompress_context()
        assert isinstance(dctx, BufferedDecompressContext)
        dctx.feed(frame)
        assert dctx.buffered_bytes == len(frame)
        assert dctx.flush() == b"x" * 1000 + b"y" * 500
