"""Unit + property tests for canonical length-limited Huffman coding."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.huffman import (
    HuffmanTable,
    build_code_lengths,
    byte_frequencies,
    canonical_codes,
    decode_symbols,
    deserialize_lengths,
    encode_symbols,
    serialize_lengths,
)
from repro.common.errors import CorruptStreamError


def kraft_sum(lengths):
    return sum(2.0 ** -l for l in lengths.values())


class TestCodeLengths:
    def test_empty_distribution(self):
        assert build_code_lengths({}) == {}

    def test_single_symbol_gets_length_one(self):
        assert build_code_lengths({65: 100}) == {65: 1}

    def test_two_symbols(self):
        lengths = build_code_lengths({0: 9, 1: 1})
        assert lengths == {0: 1, 1: 1}

    def test_kraft_inequality_holds(self):
        lengths = build_code_lengths({i: i + 1 for i in range(50)})
        assert kraft_sum(lengths) <= 1.0 + 1e-9

    def test_max_bits_respected(self):
        # Fibonacci-ish frequencies force deep trees without limiting.
        freqs = {}
        a, b = 1, 1
        for i in range(30):
            freqs[i] = a
            a, b = b, a + b
        lengths = build_code_lengths(freqs, max_bits=11)
        assert max(lengths.values()) <= 11
        assert kraft_sum(lengths) <= 1.0 + 1e-9

    def test_more_frequent_symbols_get_shorter_or_equal_codes(self):
        lengths = build_code_lengths({0: 1000, 1: 100, 2: 10, 3: 1})
        assert lengths[0] <= lengths[1] <= lengths[2] <= lengths[3]

    def test_near_optimality_vs_entropy(self):
        freqs = {i: (i + 1) ** 2 for i in range(32)}
        total = sum(freqs.values())
        entropy = -sum(f / total * math.log2(f / total) for f in freqs.values())
        lengths = build_code_lengths(freqs)
        avg = sum(freqs[s] * l for s, l in lengths.items()) / total
        assert avg <= entropy + 1.0  # Huffman's classic bound

    def test_alphabet_too_large_for_max_bits(self):
        with pytest.raises(ValueError):
            build_code_lengths({i: 1 for i in range(9)}, max_bits=3)


class TestCanonicalCodes:
    def test_codes_are_prefix_free(self):
        lengths = build_code_lengths({i: i + 1 for i in range(20)})
        codes = canonical_codes(lengths)
        rendered = [format(c, f"0{l}b") for c, l in codes.values()]
        for a in rendered:
            for b in rendered:
                if a is not b:
                    assert not b.startswith(a) or a == b

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            canonical_codes({0: 1, 1: 1, 2: 1})  # Kraft violation

    def test_deterministic_ordering(self):
        lengths = {5: 2, 1: 2, 3: 1}
        codes = canonical_codes(lengths)
        assert codes[3] == (0, 1)
        assert codes[1] == (0b10, 2)
        assert codes[5] == (0b11, 2)


class TestEncodeDecode:
    def test_roundtrip_bytes(self):
        data = b"abracadabra" * 50
        table = HuffmanTable.from_frequencies(byte_frequencies(data))
        payload = encode_symbols(data, table)
        assert bytes(decode_symbols(payload, len(data), table)) == data
        assert len(payload) < len(data)

    def test_single_symbol_stream(self):
        table = HuffmanTable.from_frequencies({7: 99})
        payload = encode_symbols([7] * 40, table)
        assert decode_symbols(payload, 40, table) == [7] * 40

    def test_unknown_symbol_rejected_on_encode(self):
        table = HuffmanTable.from_frequencies({1: 1, 2: 1})
        with pytest.raises(ValueError):
            encode_symbols([3], table)

    def test_corrupt_stream_raises(self):
        table = HuffmanTable.from_frequencies({i: i + 1 for i in range(5)})
        with pytest.raises(CorruptStreamError):
            # Demand more symbols than the payload can contain.
            decode_symbols(b"", 3, table)

    def test_oversized_symbol_count_rejected_before_allocation(self):
        # The R015 amplification fix: a corrupt count must be rejected
        # against the 8-bits-per-symbol ceiling *before* any symbol is
        # materialized, not fail billions of appends later.
        table = HuffmanTable.from_frequencies({i: i + 1 for i in range(5)})
        payload = encode_symbols([0, 1, 2], table)
        with pytest.raises(CorruptStreamError, match="cannot encode"):
            decode_symbols(payload, 8 * len(payload) + 1, table)

    def test_encoded_bit_length_matches_actual(self):
        data = b"entropy coding " * 30
        freqs = byte_frequencies(data)
        table = HuffmanTable.from_frequencies(freqs)
        payload = encode_symbols(data, table)
        bits = table.encoded_bit_length(freqs)
        assert (bits + 7) // 8 == len(payload)

    def test_decode_table_covers_every_window(self):
        table = HuffmanTable.from_frequencies({i: i + 1 for i in range(7)})
        flat = table.decode_table()
        # Kraft-complete codes: every peek window decodes to some symbol.
        assert all(entry[0] >= 0 for entry in flat)


class TestSerialization:
    def test_lengths_roundtrip(self):
        data = b"serialize me " * 40
        table = HuffmanTable.from_frequencies(byte_frequencies(data))
        blob = serialize_lengths(table, 256)
        restored, consumed = deserialize_lengths(blob, 256)
        assert consumed == len(blob)
        assert restored.lengths == table.lengths

    def test_decoding_with_deserialized_table(self):
        data = b"the table header is all a decoder needs" * 10
        table = HuffmanTable.from_frequencies(byte_frequencies(data))
        blob = serialize_lengths(table, 256)
        restored, _ = deserialize_lengths(blob, 256)
        payload = encode_symbols(data, table)
        assert bytes(decode_symbols(payload, len(data), restored)) == data

    def test_empty_header_rejected(self):
        with pytest.raises(CorruptStreamError):
            deserialize_lengths(b"\x00" * 128, 256)

    def test_invalid_header_lengths_rejected(self):
        # Three symbols of length 1 violate Kraft.
        from repro.common.bitio import BitWriter

        writer = BitWriter()
        for _ in range(3):
            writer.write(1, 4)
        writer.write(0, 4)
        with pytest.raises(CorruptStreamError):
            deserialize_lengths(writer.getvalue(), 4)


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=2000))
def test_roundtrip_arbitrary_bytes(data):
    freqs = byte_frequencies(data)
    table = HuffmanTable.from_frequencies(freqs)
    payload = encode_symbols(data, table)
    assert bytes(decode_symbols(payload, len(data), table)) == data


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(st.integers(0, 255), st.integers(1, 10_000), min_size=1, max_size=64)
)
def test_lengths_always_kraft_valid(freqs):
    lengths = build_code_lengths(freqs)
    assert kraft_sum(lengths) <= 1.0 + 1e-9
    assert set(lengths) == {s for s, f in freqs.items() if f > 0}
