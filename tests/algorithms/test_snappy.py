"""Unit tests for the wire-format-compatible Snappy codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.snappy import (
    SNAPPY_WINDOW,
    SnappyCodec,
    emit_elements,
    parse_elements,
)
from repro.algorithms.lz77 import Copy, Literal
from repro.common.errors import CorruptStreamError
from repro.common.varint import encode_varint


@pytest.fixture(scope="module")
def codec():
    return SnappyCodec()


class TestRoundTrip:
    def test_sample_inputs(self, codec, sample_inputs):
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_compressible_data_shrinks(self, codec):
        data = b"snappy snappy snappy " * 400
        assert len(codec.compress(data)) < len(data) / 3

    def test_random_data_grows_only_slightly(self, codec):
        import random

        rng = random.Random(2)
        data = bytes(rng.getrandbits(8) for _ in range(8192))
        assert len(codec.compress(data)) < len(data) * 1.02 + 64

    def test_no_levels_accepted_silently(self, codec):
        data = b"abc" * 100
        assert codec.compress(data, level=9) == codec.compress(data)

    def test_window_is_fixed_64k(self, codec):
        assert codec.info.fixed_window_bytes == SNAPPY_WINDOW
        assert codec.resolve_window(None) == SNAPPY_WINDOW


class TestWireFormat:
    """Byte-level checks against format_description.txt."""

    def test_preamble_is_varint_of_length(self, codec):
        compressed = codec.compress(b"hello")
        assert compressed.startswith(encode_varint(5))

    def test_short_literal_element(self):
        # literal of length 5: tag byte (5-1)<<2 | 00, then the bytes
        payload = emit_elements([Literal(b"hello")])
        assert payload == bytes([4 << 2]) + b"hello"

    def test_long_literal_uses_extra_length_bytes(self):
        data = bytes(61)
        payload = emit_elements([Literal(data)])
        assert payload[0] == 60 << 2  # one extra length byte
        assert payload[1] == 60  # len-1
        assert payload[2:] == data

    def test_copy1_encoding(self):
        # len 4..11, offset < 2048 -> 2-byte element
        payload = emit_elements([Literal(b"abcd"), Copy(offset=4, length=4)])
        element = payload[1 + 4 :]
        assert len(element) == 2
        assert element[0] & 0x3 == 0b01
        assert element[1] == 4  # low offset byte

    def test_copy2_encoding(self):
        payload = emit_elements([Copy(offset=3000, length=40)])
        assert payload[0] & 0x3 == 0b10
        assert int.from_bytes(payload[1:3], "little") == 3000

    def test_copy4_encoding_for_huge_offsets(self):
        payload = emit_elements([Copy(offset=70000, length=10)])
        assert payload[0] & 0x3 == 0b11
        assert int.from_bytes(payload[1:5], "little") == 70000

    def test_long_copies_split_to_64_bytes(self):
        _, stream = parse_elements(
            encode_varint(300) + emit_elements([Literal(b"ab"), Copy(offset=2, length=298)])
        )
        copies = [t for t in stream.tokens if isinstance(t, Copy)]
        assert all(c.length <= 64 for c in copies)
        assert sum(c.length for c in copies) == 298

    def test_decoder_accepts_golden_stream(self, codec):
        # Hand-assembled: length 10, literal "ab", copy offset 2 length 8.
        golden = encode_varint(10) + bytes([1 << 2]) + b"ab" + bytes([(8 - 1) << 2 | 0b10]) + (2).to_bytes(2, "little")
        assert codec.decompress(golden) == b"ababababab"


class TestCorruptStreams:
    def test_truncated_preamble(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x80")

    def test_length_mismatch_too_short(self, codec):
        stream = encode_varint(10) + emit_elements([Literal(b"abc")])
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    def test_length_mismatch_too_long(self, codec):
        stream = encode_varint(2) + emit_elements([Literal(b"abc")])
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    def test_zero_offset_copy_rejected(self, codec):
        stream = encode_varint(4) + bytes([(4 - 1) << 2 | 0b10, 0, 0])
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    def test_offset_before_start_rejected(self, codec):
        stream = encode_varint(4) + bytes([(4 - 1) << 2 | 0b10]) + (100).to_bytes(2, "little")
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    def test_literal_past_end_rejected(self, codec):
        stream = encode_varint(100) + bytes([50 << 2]) + b"short"
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    def test_truncated_copy_rejected(self, codec):
        stream = encode_varint(4) + bytes([(4 - 1) << 2 | 0b10, 0x01])
        with pytest.raises(CorruptStreamError):
            codec.decompress(stream)

    @pytest.mark.parametrize("flip", [0, 1, 5, -1])
    def test_bit_flips_never_decode_silently_to_wrong_length(self, codec, flip):
        data = b"the fleet compresses everything " * 30
        compressed = bytearray(codec.compress(data))
        compressed[flip] ^= 0x40
        try:
            out = codec.decompress(bytes(compressed))
        except CorruptStreamError:
            return
        # If it decodes, the declared length must still hold.
        assert len(out) == len(data)


class TestSkippingHeuristic:
    def test_hw_matcher_no_skipping_ratio_at_least_sw(self):
        """§6.3: hardware (no skipping) gets more chances to find matches."""
        import random

        rng = random.Random(11)
        # Mostly random with embedded repeats: skipping makes SW miss some.
        chunks = []
        for _ in range(60):
            chunks.append(bytes(rng.getrandbits(8) for _ in range(200)))
            chunks.append(b"needle-in-haystack-pattern!")
        data = b"".join(chunks)
        sw = SnappyCodec(use_skipping=True).compress(data)
        hw = SnappyCodec(use_skipping=False).compress(data)
        assert len(hw) <= len(sw)


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=6000))
def test_roundtrip_arbitrary(data):
    codec = SnappyCodec()
    assert codec.decompress(codec.compress(data)) == data
