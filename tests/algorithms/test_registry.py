"""Unit tests for the algorithm registry and the §2.2 taxonomy."""

import pytest

from repro.algorithms.base import Operation, WeightClass
from repro.common.errors import ConfigError
from repro.algorithms.registry import (
    ALGORITHM_INFOS,
    available_codecs,
    get_codec,
    get_info,
    heavyweight_algorithms,
    lightweight_algorithms,
)


class TestRegistry:
    def test_six_fleet_algorithms_described(self):
        assert set(ALGORITHM_INFOS) == {"snappy", "zstd", "flate", "brotli", "gipfeli", "lzo"}

    def test_registered_codecs_runnable(self):
        assert available_codecs() == [
            "brotli", "flate", "gipfeli",
            "graph-delta-fse", "graph-float-fse", "graph-lz-huff",
            "graph-plane-fse", "graph-token-fse",
            "lzo", "snappy", "snappy-framed", "zstd",
        ]

    def test_register_codec_collision_raises(self):
        # Static and dynamic names are both protected; a second registration
        # would silently swap the wire format behind every name holder.
        from repro.algorithms.registry import register_codec
        from repro.algorithms.snappy import SnappyCodec

        with pytest.raises(ConfigError, match="already registered"):
            register_codec("snappy", SnappyCodec)
        with pytest.raises(ConfigError, match="already registered"):
            register_codec("Graph-Delta-FSE", SnappyCodec)
        assert get_codec("snappy").info.name == "snappy"

    def test_snappy_framed_is_not_a_fleet_algorithm(self):
        # The framed variant is runnable but sits outside Figure 1's six.
        assert "snappy-framed" not in ALGORITHM_INFOS
        codec = get_codec("snappy-framed")
        data = b"framed snappy round trip " * 64
        assert codec.decompress(codec.compress(data)) == data

    def test_brotli_runs_at_fleet_default_low_level(self):
        info = get_info("brotli")
        assert info.weight_class is WeightClass.HEAVYWEIGHT
        assert info.default_level == 1  # §3.3.3: fleet Brotli runs at low levels
        codec = get_codec("brotli")
        data = b"registered brotli " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_case_insensitive_lookup(self):
        assert get_codec("Snappy").info.name == "snappy"
        assert get_info("ZSTD").display_name == "ZStd"

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(ConfigError, match="snappy"):
            get_codec("lz4")
        with pytest.raises(ConfigError, match="brotli"):
            get_info("lz4")

    def test_fresh_instance_per_call(self):
        assert get_codec("snappy") is not get_codec("snappy")


class TestTaxonomy:
    """Paper §2.2's heavyweight/lightweight classification."""

    def test_heavyweight_set(self):
        assert set(heavyweight_algorithms()) == {"zstd", "flate", "brotli"}

    def test_lightweight_set(self):
        assert set(lightweight_algorithms()) == {"snappy", "gipfeli", "lzo"}

    def test_heavyweights_all_have_entropy_coding_and_windows(self):
        for name in heavyweight_algorithms():
            info = get_info(name)
            assert info.has_entropy_coding
            assert info.fixed_window_bytes is None  # configurable windows

    def test_snappy_and_gipfeli_fixed_64k_window(self):
        assert get_info("snappy").fixed_window_bytes == 64 * 1024
        assert get_info("gipfeli").fixed_window_bytes == 64 * 1024

    def test_snappy_gipfeli_no_levels_lzo_has_levels(self):
        assert not get_info("snappy").supports_levels
        assert not get_info("gipfeli").supports_levels
        assert get_info("lzo").supports_levels

    def test_zstd_level_range_matches_fleet_usage(self):
        info = get_info("zstd")
        assert info.min_level < 0  # "negative infinity" levels exist
        assert info.max_level == 22
        assert info.default_level == 3

    def test_level_clamping(self):
        info = get_info("zstd")
        assert info.clamp_level(None) == 3
        assert info.clamp_level(99) == 22
        assert info.clamp_level(-99) == info.min_level
        assert get_info("snappy").clamp_level(5) == 1


class TestCrossCodec:
    def test_heavyweight_beats_lightweight_on_text(self, sample_inputs):
        text = sample_inputs["text"]
        heavy = min(len(get_codec(n).compress(text)) for n in ("zstd", "flate"))
        light = min(len(get_codec(n).compress(text)) for n in ("snappy", "lzo"))
        assert heavy < light

    def test_codecs_do_not_share_wire_formats(self, sample_inputs):
        from repro.common.errors import CorruptStreamError

        data = sample_inputs["text"]
        zstd_stream = get_codec("zstd").compress(data)
        for other in ("flate", "gipfeli", "lzo"):
            with pytest.raises(CorruptStreamError):
                get_codec(other).decompress(zstd_stream)

    def test_compression_ratio_helper(self):
        ratio = get_codec("snappy").compression_ratio(b"aaaa" * 1000)
        assert ratio > 10
        assert get_codec("snappy").compression_ratio(b"") == 1.0
