"""Unit tests for the Brotli-like codec (static dictionary + Huffman)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.brotli import STATIC_DICTIONARY, BrotliCodec
from repro.algorithms.flate import FlateCodec
from repro.common.errors import ConfigError, CorruptStreamError


@pytest.fixture(scope="module")
def codec():
    return BrotliCodec()


class TestRoundTrip:
    def test_sample_inputs(self, codec, sample_inputs):
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    @pytest.mark.parametrize("level", [0, 1, 5, 9, 11])
    def test_levels(self, codec, level):
        data = b"brotli level ladder content " * 150
        assert codec.decompress(codec.compress(data, level=level)) == data

    @pytest.mark.parametrize("window", [1 << 15, 1 << 20])
    def test_windows(self, codec, window):
        data = b"windowed brotli " * 400
        assert codec.decompress(codec.compress(data, window_size=window)) == data

    def test_bad_window_rejected(self, codec):
        with pytest.raises(ConfigError):
            codec.compress(b"x" * 50, window_size=3000)

    def test_incompressible_bounded(self, codec):
        import random

        rng = random.Random(5)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        assert len(codec.compress(data)) <= len(data) + 16


class TestStaticDictionary:
    def test_dictionary_built_once_and_nonempty(self):
        assert len(STATIC_DICTIONARY) > 1000

    def test_small_english_beats_flate(self, codec):
        """Brotli's niche: short text with no internal repetition still
        matches the built-in dictionary (§2.2: 'static dictionary')."""
        text = (
            b"there would have been more time for them to do what they could "
            b"about the other one after all"
        )
        brotli_size = len(codec.compress(text, level=5))
        flate_size = len(FlateCodec().compress(text, level=6))
        assert brotli_size < flate_size

    def test_small_json_benefits(self, codec):
        record = (
            b'{"id":991,"name":"frontend","type":"service","status":true,'
            b'"value":null,"error":false,"timestamp":"1970-01-01"}'
        ) * 2
        brotli_size = len(codec.compress(record, level=5))
        flate_size = len(FlateCodec().compress(record, level=6))
        assert brotli_size <= flate_size

    def test_dictionary_never_leaks_into_output(self, codec):
        # Decoding must strip the virtual dictionary prefix exactly.
        data = b" the of and to in is was"  # pure dictionary content
        assert codec.decompress(codec.compress(data, level=9)) == data


class TestCorruption:
    def test_bad_magic(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"NOPE" + b"\x00" * 16)

    def test_bad_window_log(self, codec):
        frame = bytearray(codec.compress(b"corrupt me " * 50))
        frame[4] = 99
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(frame))

    def test_truncation(self, codec):
        frame = codec.compress(b"truncate " * 200)
        with pytest.raises(CorruptStreamError):
            codec.decompress(frame[: len(frame) // 2])


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=3000), st.sampled_from([0, 3, 7]))
def test_roundtrip_arbitrary(data, level):
    codec = BrotliCodec()
    assert codec.decompress(codec.compress(data, level=level)) == data
