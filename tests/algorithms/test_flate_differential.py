"""Differential conformance: the Flate family vs stdlib ``zlib``.

The paper's CDPU speaks real wire formats, so the from-scratch DEFLATE
implementation (:mod:`repro.algorithms.deflate`) is checked against an
independent reference in both directions:

* **encode direction** — every raw stream :func:`deflate_raw` produces must
  decompress via ``zlib.decompress(..., wbits=-15)`` to the original input;
* **decode direction** — streams produced by ``zlib`` at representative
  levels (1/6/9, plus level 0's stored blocks) must decode through
  :func:`inflate_raw`.

Any divergence is a wire-format bug on our side, not a style choice.
"""

import zlib

import pytest

from repro.algorithms.deflate import DeflateCodec, deflate_raw, inflate_raw
from repro.common.errors import CorruptStreamError

ZLIB_LEVELS = [1, 6, 9]


def zlib_raw(data: bytes, level: int = 6) -> bytes:
    """Raw-DEFLATE (no zlib header/trailer) via the stdlib reference."""
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    return compressor.compress(data) + compressor.flush()


def edge_inputs() -> dict:
    """The boundary cases the ISSUE calls out plus block-type triggers."""
    incompressible = b"\x00"
    while len(incompressible) < 8 * 1024:
        # xorshift-style scramble: deterministic, byte-level incompressible.
        state = int.from_bytes(incompressible[-8:].ljust(8, b"\x01"), "little")
        state ^= (state << 13) & (2**64 - 1)
        state ^= state >> 7
        state ^= (state << 17) & (2**64 - 1)
        incompressible += state.to_bytes(8, "little")
    return {
        "empty": b"",
        "one_byte": b"Q",
        "two_bytes": b"ab",
        "single_symbol": b"\x00" * 5000,
        "short_text": b"differential testing finds wire-format bugs",
        "repetitive": b"abcdefgh" * 2000,
        "incompressible": incompressible,
        "all_byte_values": bytes(range(256)) * 16,
        "long_match_chain": (b"x" * 300 + b"y") * 50,
    }


@pytest.fixture(scope="module", params=sorted(edge_inputs()))
def edge_case(request):
    return request.param, edge_inputs()[request.param]


class TestEncodeDirection:
    """Our encoder's output through the zlib reference decoder."""

    @pytest.mark.parametrize("level", ZLIB_LEVELS)
    def test_edge_inputs_roundtrip_through_zlib(self, edge_case, level):
        name, data = edge_case
        stream = deflate_raw(data, level=level)
        assert zlib.decompress(stream, -15) == data, name

    def test_sample_inputs_roundtrip_through_zlib(self, sample_inputs):
        for name, data in sample_inputs.items():
            stream = deflate_raw(data)
            assert zlib.decompress(stream, -15) == data, name

    def test_stream_is_final(self, sample_inputs):
        # decompressobj flags eof only after a BFINAL block: every stream we
        # emit must terminate, with no trailing garbage.
        for name, data in sample_inputs.items():
            decomp = zlib.decompressobj(-15)
            assert decomp.decompress(deflate_raw(data)) == data, name
            assert decomp.eof, name
            assert decomp.unused_data == b"", name

    def test_codec_wrapper_matches_function(self):
        data = b"wrapper equivalence " * 64
        assert DeflateCodec().compress(data, level=6) == deflate_raw(data, level=6)


class TestDecodeDirection:
    """zlib-reference streams through our decoder."""

    @pytest.mark.parametrize("level", ZLIB_LEVELS)
    def test_edge_inputs_from_zlib(self, edge_case, level):
        name, data = edge_case
        assert inflate_raw(zlib_raw(data, level)) == data, name

    def test_sample_inputs_from_zlib(self, sample_inputs):
        for level in ZLIB_LEVELS:
            for name, data in sample_inputs.items():
                assert inflate_raw(zlib_raw(data, level)) == data, (name, level)

    def test_stored_blocks_from_zlib(self, sample_inputs):
        # Level 0 emits stored (BTYPE=00) blocks, including the multi-block
        # split at 65535 bytes.
        big = b"stored-block payload " * 5000  # > 64 KiB, forces a split
        for data in [*sample_inputs.values(), big]:
            assert inflate_raw(zlib_raw(data, level=0)) == data

    def test_codec_wrapper_matches_function(self):
        stream = zlib_raw(b"wrapper equivalence " * 64)
        assert DeflateCodec().decompress(stream) == inflate_raw(stream)


class TestCrossConsistency:
    """Both implementations agree on each other's streams symmetrically."""

    @pytest.mark.parametrize("level", ZLIB_LEVELS)
    def test_ours_decodes_our_own_output(self, edge_case, level):
        name, data = edge_case
        assert inflate_raw(deflate_raw(data, level=level)) == data, name

    def test_truncated_zlib_stream_raises(self):
        stream = zlib_raw(b"truncate me " * 200, 9)
        with pytest.raises(CorruptStreamError):
            inflate_raw(stream[: len(stream) // 2])
