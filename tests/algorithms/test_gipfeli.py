"""Dedicated round-trip and integrity tests for the Gipfeli-like codec.

Cross-codec comparisons live in ``test_other_codecs.py``; this file is the
per-codec coverage the registry-completeness rule (R005) requires.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.container import CHECKSUM_BYTES
from repro.algorithms.gipfeli import MAGIC, GipfeliCodec
from repro.common.errors import CorruptStreamError


class TestRoundTrip:
    def test_empty(self):
        codec = GipfeliCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = GipfeliCodec()
        assert codec.decompress(codec.compress(b"g")) == b"g"

    def test_sample_inputs(self, sample_inputs):
        codec = GipfeliCodec()
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_full_byte_alphabet(self):
        # More distinct values than the 32-entry top set: exercises both the
        # 6-bit and the 9-bit literal paths.
        data = bytes(range(256)) * 30
        codec = GipfeliCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_stored_fallback_round_trips(self):
        import random

        rng = random.Random(5)
        data = bytes(rng.getrandbits(8) for _ in range(3000))
        codec = GipfeliCodec()
        stream = codec.compress(data)
        assert codec.decompress(stream) == data
        assert len(stream) <= len(data) + 16 + CHECKSUM_BYTES

    def test_stream_starts_with_magic(self):
        assert GipfeliCodec().compress(b"abc").startswith(MAGIC)


class TestIntegrity:
    def test_content_trailer_catches_literal_flips(self):
        codec = GipfeliCodec()
        payload = b"gipfeli integrity sweep " * 120
        compressed = codec.compress(payload)
        for position in range(len(MAGIC), len(compressed), 7):
            mutated = bytearray(compressed)
            mutated[position] ^= 0x40
            try:
                out = codec.decompress(bytes(mutated))
            except CorruptStreamError:
                continue
            assert out == payload

    def test_trailer_flip_detected(self):
        codec = GipfeliCodec()
        compressed = bytearray(codec.compress(b"trailer " * 64))
        compressed[-1] ^= 0x01
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(compressed))

    def test_truncations(self):
        codec = GipfeliCodec()
        compressed = codec.compress(b"truncate me " * 200)
        for cut in range(1, len(compressed), max(1, len(compressed) // 16)):
            with pytest.raises(CorruptStreamError):
                codec.decompress(compressed[:cut])

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            GipfeliCodec().decompress(b"NOPE" + b"\x00" * 40)

    def test_oversized_top_set_rejected(self):
        from repro.algorithms.container import append_content_checksum
        from repro.common.varint import encode_varint

        frame = MAGIC + encode_varint(10) + bytes([200])  # top set > 32, not 255
        with pytest.raises(CorruptStreamError):
            GipfeliCodec().decompress(append_content_checksum(frame, b""))

    def test_empty_stream(self):
        with pytest.raises(CorruptStreamError):
            GipfeliCodec().decompress(b"")


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=4000))
def test_roundtrip_arbitrary(data):
    codec = GipfeliCodec()
    assert codec.decompress(codec.compress(data)) == data
