"""Unit tests for ZStd-frame structural analysis (the HW model's input)."""

import pytest

from repro.algorithms.lz77 import decode_tokens
from repro.algorithms.zstd import ZstdCodec
from repro.algorithms.zstd_analyze import analyze_frame
from repro.common.errors import CorruptStreamError


@pytest.fixture(scope="module")
def codec():
    return ZstdCodec()


class TestAnalyzeFrame:
    def test_tokens_reconstruct_content(self, codec, sample_inputs):
        for name, data in sample_inputs.items():
            stats = analyze_frame(codec.compress(data))
            assert decode_tokens(stats.tokens.tokens) == data, name

    def test_content_and_compressed_sizes(self, codec):
        data = b"measure me " * 500
        frame = codec.compress(data)
        stats = analyze_frame(frame)
        assert stats.content_bytes == len(data)
        assert stats.compressed_bytes == len(frame)

    def test_huffman_symbols_counted_for_literal_heavy_data(self, codec):
        import random

        rng = random.Random(6)
        data = bytes(rng.choice(b"abcdefgh") for _ in range(20000))
        stats = analyze_frame(codec.compress(data))
        assert stats.huffman_symbols > 0
        assert stats.huffman_tables >= 1

    def test_rle_block_detected(self, codec):
        stats = analyze_frame(codec.compress(b"\x00" * 4096))
        assert any(b.block_type == "rle" for b in stats.blocks)

    def test_raw_block_for_random_data(self, codec):
        import random

        rng = random.Random(7)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        stats = analyze_frame(codec.compress(data))
        assert any(b.block_type == "raw" for b in stats.blocks)
        assert stats.huffman_symbols == 0

    def test_sequences_counted(self, codec):
        data = b"sequences everywhere " * 400
        stats = analyze_frame(codec.compress(data))
        assert stats.total_sequences > 0
        assert stats.total_fse_tables in (0, 3) or stats.total_fse_tables % 3 == 0

    def test_accuracy_logs_extracted(self, codec):
        data = b"accuracy logs " * 400
        stats = analyze_frame(codec.compress(data))
        compressed = [b for b in stats.blocks if b.block_type == "compressed"]
        assert compressed
        assert all(5 <= a <= 12 for b in compressed for a in b.fse_accuracy_logs)

    def test_window_log_passthrough(self, codec):
        frame = codec.compress(b"w" * 100, window_size=1 << 17)
        assert analyze_frame(frame).window_log == 17

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptStreamError):
            analyze_frame(b"JUNK" + b"\x00" * 10)

    def test_truncated_frame_rejected(self, codec):
        frame = codec.compress(b"truncate " * 200)
        with pytest.raises(CorruptStreamError):
            analyze_frame(frame[:-3])

    def test_agrees_with_decoder_on_multiblock(self, codec):
        data = (b"multi block content! " * 1300 + b"\xff") * 8  # > 128 KiB
        frame = codec.compress(data)
        stats = analyze_frame(frame)
        assert len(stats.blocks) >= 2
        assert decode_tokens(stats.tokens.tokens) == codec.decompress(frame)
