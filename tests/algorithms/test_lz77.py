"""Unit + property tests for the parameterized LZ77 matcher/decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lz77 import (
    Copy,
    Literal,
    Lz77Encoder,
    Lz77Params,
    TokenStream,
    decode_tokens,
    split_long_copies,
)
from repro.common.errors import ConfigError, CorruptStreamError


def roundtrip(data: bytes, params: Lz77Params = Lz77Params()) -> TokenStream:
    stream = Lz77Encoder(params).encode(data)
    assert decode_tokens(stream.tokens, expected_length=len(data)) == data
    return stream


class TestEncoderRoundTrip:
    def test_empty(self):
        assert len(roundtrip(b"")) == 0

    def test_short_input_is_single_literal(self):
        stream = roundtrip(b"abc")
        assert len(stream) == 1
        assert isinstance(stream.tokens[0], Literal)

    def test_repetitive_data_produces_copies(self):
        stream = roundtrip(b"abcd" * 256)
        assert stream.num_copies >= 1
        assert stream.copy_bytes > stream.literal_bytes

    def test_incompressible_data_is_mostly_literals(self):
        import random

        rng = random.Random(5)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        stream = roundtrip(data)
        assert stream.literal_bytes > 0.9 * len(data)

    def test_overlapping_copy_roundtrip(self):
        # "aaaa..." forces offset-1 copies longer than the offset.
        stream = roundtrip(b"a" * 500)
        assert any(isinstance(t, Copy) and t.offset < t.length for t in stream.tokens)

    def test_all_byte_values(self):
        data = bytes(range(256)) * 8
        roundtrip(data)

    @pytest.mark.parametrize("window", [64, 1024, 65535])
    def test_window_bounds_offsets(self, window):
        data = (b"0123456789abcdef" * 64) * 8
        stream = roundtrip(data, Lz77Params(window_size=window))
        assert all(c.offset <= window for c in stream.tokens if isinstance(c, Copy))

    def test_max_match_length_respected(self):
        params = Lz77Params(max_match_length=16)
        stream = roundtrip(b"z" * 1000, params)
        assert all(c.length <= 16 for c in stream.tokens if isinstance(c, Copy))

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_associativity_roundtrips(self, assoc):
        data = b"the rain in spain " * 100
        roundtrip(data, Lz77Params(associativity=assoc))

    def test_higher_associativity_never_reduces_match_bytes(self):
        data = (b"alpha beta gamma delta " * 40 + b"alpha beta gamma delta epsilon ") * 4
        low = Lz77Encoder(Lz77Params(associativity=1)).encode(data)
        high = Lz77Encoder(Lz77Params(associativity=8)).encode(data)
        assert high.copy_bytes >= low.copy_bytes

    def test_lazy_matching_roundtrips_and_does_not_hurt(self):
        data = (b"abcdefgh12345678" * 50 + b"xbcdefgh12345678") * 6
        greedy = Lz77Encoder(Lz77Params(lazy=False)).encode(data)
        lazy = Lz77Encoder(Lz77Params(lazy=True)).encode(data)
        assert decode_tokens(lazy.tokens) == data
        assert lazy.copy_bytes >= greedy.copy_bytes * 0.95

    def test_min_match_3_finds_short_matches(self):
        data = (b"abcX" + b"abcY") * 200  # only 3-byte repeats
        four = Lz77Encoder(Lz77Params(min_match=4)).encode(data)
        three = Lz77Encoder(Lz77Params(min_match=3)).encode(data)
        assert decode_tokens(three.tokens) == data
        assert three.copy_bytes >= four.copy_bytes

    def test_skipping_reduces_hash_work_on_random_data(self):
        import random

        rng = random.Random(9)
        data = bytes(rng.getrandbits(8) for _ in range(16384))
        _, no_skip = Lz77Encoder(Lz77Params(use_skipping=False)).encode_with_stats(data)
        _, skip = Lz77Encoder(Lz77Params(use_skipping=True)).encode_with_stats(data)
        assert skip.positions_hashed < no_skip.positions_hashed

    def test_tagged_table_produces_same_output_kind(self):
        data = b"hello world " * 200
        plain = Lz77Encoder(Lz77Params(hash_table_contents="position")).encode(data)
        tagged = Lz77Encoder(Lz77Params(hash_table_contents="position_and_tag")).encode(data)
        assert decode_tokens(tagged.tokens) == data
        # tags only filter false candidates; match quality is preserved
        assert tagged.copy_bytes == pytest.approx(plain.copy_bytes, rel=0.05)


class TestMatcherStats:
    def test_stats_account_all_bytes(self):
        data = b"compression " * 300
        stream, stats = Lz77Encoder(Lz77Params()).encode_with_stats(data)
        assert stats.match_bytes + stats.literal_bytes == len(data)
        assert stats.match_bytes == stream.copy_bytes

    def test_collision_rate_bounds(self):
        data = b"ratio " * 500
        _, stats = Lz77Encoder(Lz77Params()).encode_with_stats(data)
        assert 0.0 <= stats.collision_rate <= 1.0

    def test_small_table_increases_collisions(self):
        data = bytes((i * 37 + (i >> 3)) & 0xFF for i in range(16384)) * 2
        _, big = Lz77Encoder(Lz77Params(hash_table_entries=1 << 15)).encode_with_stats(data)
        _, small = Lz77Encoder(Lz77Params(hash_table_entries=1 << 6)).encode_with_stats(data)
        assert small.candidates_rejected >= big.candidates_rejected


class TestTokenStream:
    def test_fallback_counts(self):
        tokens = [
            Literal(b"x" * 10),
            Copy(offset=100, length=5),
            Copy(offset=5000, length=7),
            Copy(offset=70000, length=9),
        ]
        stream = TokenStream(tokens, 31)
        assert stream.fallback_copy_count(4096) == 2
        assert stream.fallback_copy_bytes(4096) == 16
        assert stream.fallback_copy_count(1 << 20) == 0

    def test_output_length(self):
        stream = TokenStream([Literal(b"ab"), Copy(offset=2, length=6)], 8)
        assert stream.output_length() == 8

    def test_array_views(self):
        stream = TokenStream([Literal(b"abc"), Copy(offset=3, length=4)], 7)
        assert list(stream.literal_run_lengths) == [3]
        assert list(stream.copy_offsets) == [3]
        assert list(stream.copy_lengths) == [4]


class TestDecoder:
    def test_offset_beyond_output_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_tokens([Copy(offset=1, length=1)])

    def test_length_mismatch_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_tokens([Literal(b"abc")], expected_length=4)

    def test_copy_validation_in_token_constructors(self):
        with pytest.raises(ValueError):
            Copy(offset=0, length=1)
        with pytest.raises(ValueError):
            Copy(offset=1, length=0)


class TestSplitLongCopies:
    def test_splits_preserve_semantics(self):
        tokens = [Literal(b"abcdefgh"), Copy(offset=8, length=200)]
        split = split_long_copies(tokens, 64)
        assert decode_tokens(split) == decode_tokens(tokens)
        assert all(t.length <= 64 for t in split if isinstance(t, Copy))

    def test_overlapping_copy_split(self):
        tokens = [Literal(b"ab"), Copy(offset=2, length=100)]
        assert decode_tokens(split_long_copies(tokens, 7)) == decode_tokens(tokens)

    def test_short_copies_untouched(self):
        tokens = [Copy(offset=4, length=4)]
        assert split_long_copies([Literal(b"abcd")] + tokens, 64)[1] == tokens[0]


class TestParamsValidation:
    def test_non_power_of_two_table_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Params(hash_table_entries=1000)

    def test_tiny_window_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Params(window_size=2)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Params(associativity=0)

    def test_bad_contents_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Params(hash_table_contents="everything")

    def test_bad_hash_function_rejected(self):
        with pytest.raises(KeyError):
            Lz77Params(hash_function="md5")

    def test_bad_min_match_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Params(min_match=2)


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_arbitrary_bytes(data):
    """Property: encode/decode is the identity for any input."""
    roundtrip(data)


@settings(max_examples=30, deadline=None)
@given(
    st.binary(min_size=1, max_size=2048),
    st.sampled_from([64, 256, 4096]),
    st.sampled_from([1 << 6, 1 << 10, 1 << 14]),
)
def test_roundtrip_across_parameter_grid(data, window, entries):
    """Property: identity holds across window/table parameter combinations."""
    roundtrip(data, Lz77Params(window_size=window, hash_table_entries=entries))


class TestVectorizedPrecompute:
    """The numpy batch-hash path must equal the scalar path bit-for-bit.

    ``Lz77Encoder._hash_positions`` switches on input size; the golden wire
    vectors pin the large-input behaviour, and these tests pin the two paths
    against each other directly (and the scratch table against fresh state).
    """

    PARAM_GRID = [
        Lz77Params(),
        Lz77Params(min_match=3, lazy=True, hash_function="zstd5"),
        Lz77Params(
            hash_table_contents="position_and_tag",
            associativity=4,
            hash_function="xor_shift",
        ),
        Lz77Params(use_skipping=True, hash_table_entries=1 << 8),
    ]

    @staticmethod
    def scalar_reference(data, params):
        """Recompute slots/tags with the scalar hash, independent of size."""
        from repro.common.hashing import get_hash_function, load_u32le

        hash_fn = get_hash_function(params.hash_function)
        hash_mask = (
            (1 << (8 * params.min_match)) - 1 if params.min_match < 4 else 0xFFFFFFFF
        )
        tagged = params.hash_table_contents == "position_and_tag"
        slots, slots_raw, tags = [], [], [] if tagged else None
        for pos in range(len(data)):
            word = load_u32le(data, pos)
            slots.append(hash_fn(word & hash_mask, params.hash_bits))
            slots_raw.append(hash_fn(word, params.hash_bits))
            if tags is not None:
                tags.append(word & 0xFF)
        return slots, slots_raw, tags

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_hash_positions_matches_scalar_reference(self, params):
        data = bytes((i * 131 + i // 7) & 0xFF for i in range(3000))
        encoder = Lz77Encoder(params)
        slots, slots_raw, tags = encoder._hash_positions(data, len(data))
        ref_slots, ref_raw, ref_tags = self.scalar_reference(data, params)
        assert slots == ref_slots
        assert slots_raw == ref_raw
        assert tags == ref_tags

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_small_input_scalar_path_agrees(self, params):
        data = b"below the vectorization threshold" * 3  # < 512 bytes
        assert len(data) < 512
        encoder = Lz77Encoder(params)
        slots, slots_raw, tags = encoder._hash_positions(data, len(data))
        ref_slots, ref_raw, ref_tags = self.scalar_reference(data, params)
        assert slots == ref_slots
        assert tags == ref_tags
        if params.min_match < 4:
            assert slots_raw == ref_raw
        else:
            assert slots_raw is slots  # raw word == masked word, list aliased

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_scratch_table_reuse_is_stateless(self, params):
        a = b"first stream with its own repeated repeated content " * 40
        b = bytes((i * 17) & 0xFF for i in range(2500))
        reused = Lz77Encoder(params)
        reused.encode(a)
        second = reused.encode(b)
        fresh = Lz77Encoder(params).encode(b)
        assert [repr(t) for t in second] == [repr(t) for t in fresh]

    def test_encode_identical_across_threshold_styles(self):
        # The same content encoded below and above the threshold must agree
        # where the parse is position-independent: a doubled buffer's first
        # half parse only depends on the first half's content.
        params = Lz77Params()
        small = b"abcdabcdabcdabcd" * 8  # 128 bytes: scalar path
        big = small * 8  # 1024 bytes: vector path
        enc = Lz77Encoder(params)
        small_tokens = list(enc.encode(small))
        big_tokens = list(enc.encode(big))
        assert decode_tokens(big_tokens, expected_length=len(big)) == big
        assert decode_tokens(small_tokens, expected_length=len(small)) == small
