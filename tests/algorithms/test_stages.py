"""Unit tests for the composable stage library (transforms + backends)."""

import numpy as np
import pytest

from repro.algorithms import stages
from repro.algorithms.container import StageDescriptor
from repro.common.errors import ConfigError, CorruptStreamError

RNG = np.random.default_rng(20230617)

PAYLOADS = {
    "empty": b"",
    "one_byte": b"A",
    "text": b"the quick brown fox jumps over the lazy dog\n" * 50,
    "random": RNG.integers(0, 256, 5001, dtype=np.uint8).tobytes(),
    "f64_tail": (np.cumsum(RNG.normal(0, 1e-3, 700)) + 100).astype("<f8").tobytes() + b"xy",
    "f32_tail": (np.cumsum(RNG.normal(0, 1e-3, 700)) + 100).astype("<f4").tobytes() + b"z",
    "lines": b"GET /api/v1/item HTTP 200\n" * 200,
    "all_bytes": bytes(range(256)) * 5,
}

STAGE_VARIANTS = [
    ("delta", (1,)),
    ("delta", (4,)),
    ("delta", (8,)),
    ("transpose", (4,)),
    ("transpose", (8,)),
    ("float_split", (4,)),
    ("float_split", (8,)),
    ("tokenize", (10,)),
    ("raw", ()),
    ("huffman", ()),
    ("fse", ()),
    ("lz77", ()),
]


@pytest.mark.parametrize("name,params", STAGE_VARIANTS)
@pytest.mark.parametrize("payload", sorted(PAYLOADS))
def test_every_stage_roundtrips_every_payload(name, params, payload):
    stage = stages.make_stage(name, *params)
    data = PAYLOADS[payload]
    assert stage.inverse(stage.forward(data)) == data


@pytest.mark.parametrize("name,params", STAGE_VARIANTS)
def test_descriptor_roundtrip(name, params):
    stage = stages.make_stage(name, *params)
    descriptor = stages.descriptor_for(stage)
    rebuilt = stages.stage_from_descriptor(descriptor)
    assert type(rebuilt) is type(stage)
    assert rebuilt.params() == stage.params()


def test_stage_names_cover_registry():
    assert set(stages.stage_names()) == {
        "delta", "transpose", "float_split", "tokenize",
        "raw", "huffman", "fse", "lz77",
    }
    for backend in stages.ENTROPY_BACKENDS:
        assert stages.make_stage(backend).is_backend


def test_make_stage_rejects_unknown_and_bad_params():
    with pytest.raises(ConfigError, match="unknown stage"):
        stages.make_stage("wavelet")
    with pytest.raises(ConfigError):
        stages.make_stage("delta", 0)
    with pytest.raises(ConfigError):
        stages.make_stage("transpose", 1)
    with pytest.raises(ConfigError):
        stages.make_stage("float_split", 6)
    with pytest.raises(ConfigError):
        stages.make_stage("tokenize", 256)


def test_stage_from_descriptor_rejects_corrupt_descriptors():
    with pytest.raises(CorruptStreamError, match="unknown stage"):
        stages.stage_from_descriptor(StageDescriptor(99, ()))
    with pytest.raises(CorruptStreamError):
        stages.stage_from_descriptor(StageDescriptor(1, (0,)))  # delta stride 0
    with pytest.raises(CorruptStreamError):
        stages.stage_from_descriptor(StageDescriptor(3, (5,)))  # float width 5


def test_delta_exposes_small_residuals():
    ramp = bytes(range(200)) * 10
    out = stages.make_stage("delta", 1).forward(ramp)
    # A ramp deltas to a near-constant residual stream.
    assert len(set(out[1:])) <= 2


def test_transpose_groups_lanes():
    records = b"".join(bytes([i, 0, 0, 0]) for i in range(64))
    out = stages.make_stage("transpose", 4).forward(records)
    # Lane 0 (the varying byte) comes first, then three all-zero planes.
    assert out[:64] == bytes(range(64))
    assert set(out[64:]) == {0}


def test_float_split_isolates_exponent_plane():
    values = (np.full(512, 1.5) + np.arange(512) * 2.0 ** -10).astype("<f8")
    out = stages.make_stage("float_split", 8).forward(values.tobytes())
    # All 512 values share sign and exponent: the 64-byte sign bitplane
    # after the varint count prefix is all zero.
    from repro.common.varint import encode_varint

    prefix = len(encode_varint(512))
    sign_plane = out[prefix : prefix + 64]
    assert set(sign_plane) == {0}


def test_tokenize_maps_repeated_records_to_indices():
    data = b"alpha\nbeta\nalpha\nbeta\nalpha\n"
    stage = stages.make_stage("tokenize", 10)
    out = stage.forward(data)
    assert len(out) < len(data)
    assert stage.inverse(out) == data


@pytest.mark.parametrize("backend", stages.ENTROPY_BACKENDS)
def test_backend_inverse_rejects_truncation(backend):
    stage = stages.make_stage(backend)
    if backend == "raw":
        pytest.skip("raw has no structure to violate")
    coded = stage.forward(PAYLOADS["text"])
    with pytest.raises(CorruptStreamError):
        stage.inverse(coded[: len(coded) // 2])


def test_backends_never_expand_beyond_one_byte():
    for backend in ("huffman", "fse"):
        stage = stages.make_stage(backend)
        for data in PAYLOADS.values():
            assert len(stage.forward(data)) <= len(data) + 1
