"""Dedicated round-trip and integrity tests for the LZO-like codec.

Cross-codec comparisons live in ``test_other_codecs.py``; this file is the
per-codec coverage the registry-completeness rule (R005) requires.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.container import CHECKSUM_BYTES, append_content_checksum
from repro.algorithms.lzo import MAGIC, _MAX_COPY_LEN, LzoCodec
from repro.common.errors import CorruptStreamError
from repro.common.varint import encode_varint


class TestRoundTrip:
    def test_empty(self):
        codec = LzoCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = LzoCodec()
        assert codec.decompress(codec.compress(b"z")) == b"z"

    def test_sample_inputs(self, sample_inputs):
        codec = LzoCodec()
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_all_levels(self):
        codec = LzoCodec()
        data = b"lzo per-level round trip " * 150
        for level in range(1, 10):
            assert codec.decompress(codec.compress(data, level=level)) == data

    def test_copy_length_cap_round_trips(self):
        # A run far beyond _MAX_COPY_LEN forces long copies to be split.
        data = b"A" * (_MAX_COPY_LEN * 5)
        codec = LzoCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_stream_starts_with_magic(self):
        assert LzoCodec().compress(b"abc").startswith(MAGIC)


class TestIntegrity:
    def test_content_trailer_catches_literal_flips(self):
        codec = LzoCodec()
        payload = b"lzo integrity sweep " * 120
        compressed = codec.compress(payload)
        for position in range(len(MAGIC), len(compressed), 7):
            mutated = bytearray(compressed)
            mutated[position] ^= 0x40
            try:
                out = codec.decompress(bytes(mutated))
            except CorruptStreamError:
                continue
            assert out == payload

    def test_trailer_flip_detected(self):
        codec = LzoCodec()
        compressed = bytearray(codec.compress(b"trailer " * 64))
        compressed[-1] ^= 0x01
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(compressed))

    def test_missing_trailer_detected(self):
        codec = LzoCodec()
        compressed = codec.compress(b"short " * 64)
        with pytest.raises(CorruptStreamError):
            codec.decompress(compressed[:-CHECKSUM_BYTES])

    def test_truncations(self):
        codec = LzoCodec()
        compressed = codec.compress(b"truncate me " * 200)
        for cut in range(1, len(compressed), max(1, len(compressed) // 16)):
            with pytest.raises(CorruptStreamError):
                codec.decompress(compressed[:cut])

    def test_zero_offset_copy_rejected(self):
        frame = MAGIC + encode_varint(4) + bytes([0x80, 0x00, 0x00, 0x00])
        with pytest.raises(CorruptStreamError):
            LzoCodec().decompress(append_content_checksum(frame, b""))

    def test_truncated_copy_element_rejected(self):
        frame = MAGIC + encode_varint(4) + bytes([0x80, 0x00])
        with pytest.raises(CorruptStreamError):
            LzoCodec().decompress(append_content_checksum(frame, b""))

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            LzoCodec().decompress(b"NOPE" + b"\x00" * 40)

    def test_empty_stream(self):
        with pytest.raises(CorruptStreamError):
            LzoCodec().decompress(b"")


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=4000))
def test_roundtrip_arbitrary(data):
    codec = LzoCodec()
    assert codec.decompress(codec.compress(data)) == data
