"""Dedicated round-trip and integrity tests for the Flate-like codec.

Cross-codec comparisons live in ``test_other_codecs.py``; this file is the
per-codec coverage the registry-completeness rule (R005) requires: every
registered codec owns a test file exercising compress/decompress round trips
and corruption detection.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.container import CHECKSUM_BYTES
from repro.algorithms.flate import DEFAULT_WINDOW, MAGIC, FlateCodec
from repro.common.errors import ConfigError, CorruptStreamError


class TestRoundTrip:
    def test_empty(self):
        codec = FlateCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = FlateCodec()
        assert codec.decompress(codec.compress(b"x")) == b"x"

    def test_sample_inputs(self, sample_inputs):
        codec = FlateCodec()
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_all_levels(self):
        codec = FlateCodec()
        data = b"flate per-level round trip " * 150
        for level in range(1, 10):
            assert codec.decompress(codec.compress(data, level=level)) == data

    def test_explicit_window(self):
        codec = FlateCodec()
        data = b"windowed content " * 500
        stream = codec.compress(data, window_size=4096)
        assert codec.decompress(stream) == data

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            FlateCodec().compress(b"x", window_size=3000)  # not a power of two
        assert FlateCodec().resolve_window(None) == DEFAULT_WINDOW

    def test_stream_starts_with_magic(self):
        assert FlateCodec().compress(b"abc").startswith(MAGIC)


class TestIntegrity:
    def test_content_trailer_catches_literal_flips(self):
        """Any byte flip in the body is detected, not just structural ones."""
        codec = FlateCodec()
        compressed = bytearray(codec.compress(b"checksum coverage " * 120))
        for position in range(len(MAGIC), len(compressed), 7):
            mutated = bytearray(compressed)
            mutated[position] ^= 0x40
            try:
                out = codec.decompress(bytes(mutated))
            except CorruptStreamError:
                continue
            assert out == b"checksum coverage " * 120

    def test_trailer_flip_detected(self):
        codec = FlateCodec()
        compressed = bytearray(codec.compress(b"trailer " * 64))
        compressed[-1] ^= 0x01
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(compressed))

    def test_missing_trailer_detected(self):
        codec = FlateCodec()
        compressed = codec.compress(b"short " * 64)
        with pytest.raises(CorruptStreamError):
            codec.decompress(compressed[:-CHECKSUM_BYTES])

    def test_truncations(self):
        codec = FlateCodec()
        compressed = codec.compress(b"truncate me " * 200)
        for cut in range(1, len(compressed), max(1, len(compressed) // 16)):
            with pytest.raises(CorruptStreamError):
                codec.decompress(compressed[:cut])

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            FlateCodec().decompress(b"NOPE" + b"\x00" * 40)

    def test_empty_stream(self):
        with pytest.raises(CorruptStreamError):
            FlateCodec().decompress(b"")


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=4000))
def test_roundtrip_arbitrary(data):
    codec = FlateCodec()
    assert codec.decompress(codec.compress(data)) == data
