"""Unit tests for the Flate-like, Gipfeli-like and LZO-like codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flate import FlateCodec
from repro.algorithms.gipfeli import GipfeliCodec
from repro.algorithms.lzo import LzoCodec
from repro.common.errors import CorruptStreamError

CODECS = [FlateCodec, GipfeliCodec, LzoCodec]


@pytest.mark.parametrize("codec_cls", CODECS)
class TestCommonBehaviour:
    def test_sample_roundtrips(self, codec_cls, sample_inputs):
        codec = codec_cls()
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_compressible_data_shrinks(self, codec_cls):
        codec = codec_cls()
        data = b"structured repetitive content here " * 400
        assert len(codec.compress(data)) < len(data) / 2

    def test_bounded_expansion_on_random(self, codec_cls):
        import random

        rng = random.Random(8)
        codec = codec_cls()
        data = bytes(rng.getrandbits(8) for _ in range(8192))
        assert len(codec.compress(data)) < len(data) * 1.15 + 64

    def test_bad_magic_rejected(self, codec_cls):
        with pytest.raises(CorruptStreamError):
            codec_cls().decompress(b"XXXX" + b"\x00" * 30)

    def test_truncation_rejected_or_detected(self, codec_cls):
        codec = codec_cls()
        compressed = codec.compress(b"truncate this payload " * 100)
        with pytest.raises(CorruptStreamError):
            codec.decompress(compressed[: len(compressed) // 2])


class TestFlate:
    def test_levels_roundtrip(self):
        codec = FlateCodec()
        data = b"flate levels " * 200
        for level in (1, 3, 6, 9):
            assert codec.decompress(codec.compress(data, level=level)) == data

    def test_default_window_32k(self):
        assert FlateCodec().resolve_window(None) == 32 * 1024

    def test_structurally_zstd_minus_fse(self):
        """§3.4: Flate and ZStd differ by the FSE module only."""
        from repro.algorithms.flate import FLATE_INFO
        from repro.algorithms.zstd import ZSTD_INFO

        assert FLATE_INFO.has_entropy_coding and ZSTD_INFO.has_entropy_coding
        assert FLATE_INFO.weight_class == ZSTD_INFO.weight_class

    def test_stored_fallback_on_incompressible(self):
        import random

        rng = random.Random(12)
        data = bytes(rng.getrandbits(8) for _ in range(4000))
        compressed = FlateCodec().compress(data)
        assert len(compressed) <= len(data) + 16


class TestGipfeli:
    def test_no_levels(self):
        assert not GipfeliCodec().info.supports_levels

    def test_simple_entropy_beats_snappy_on_skewed_literals(self):
        """Gipfeli's niche: literal entropy coding Snappy lacks (§2.2)."""
        import random

        from repro.algorithms.snappy import SnappyCodec

        rng = random.Random(3)
        # Mostly a 16-symbol alphabet, no long repeats: entropy coding wins.
        data = bytes(rng.choice(b"abcdefghijklmnop") for _ in range(20000))
        assert len(GipfeliCodec().compress(data)) < len(SnappyCodec().compress(data))

    def test_top_set_cap(self):
        compressed = GipfeliCodec().compress(bytes(range(256)) * 20)
        assert GipfeliCodec().decompress(compressed) == bytes(range(256)) * 20


class TestLzo:
    def test_levels_change_effort_not_correctness(self):
        codec = LzoCodec()
        data = b"lzo level ladder " * 300
        sizes = [len(codec.compress(data, level=l)) for l in (1, 5, 9)]
        for level in (1, 5, 9):
            assert codec.decompress(codec.compress(data, level=level)) == data
        assert sizes[-1] <= sizes[0]

    def test_no_entropy_coding(self):
        assert not LzoCodec().info.has_entropy_coding

    def test_zero_length_literal_run_rejected(self):
        from repro.common.varint import encode_varint

        with pytest.raises(CorruptStreamError):
            LzoCodec().decompress(b"LZRL" + encode_varint(1) + b"\x00")


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=3000), st.sampled_from(CODECS))
def test_roundtrip_arbitrary(data, codec_cls):
    codec = codec_cls()
    assert codec.decompress(codec.compress(data)) == data
