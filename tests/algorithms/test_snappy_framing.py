"""Unit tests for the Snappy framing (streaming) format and CRC-32C."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.snappy_framing import (
    CHUNK_COMPRESSED,
    CHUNK_PADDING,
    CHUNK_STREAM_IDENTIFIER,
    CHUNK_UNCOMPRESSED,
    MAX_CHUNK_DATA,
    STREAM_IDENTIFIER,
    SnappyFramedStream,
    compress_framed,
    decompress_framed,
    iter_frames,
)
from repro.common.crc32c import crc32c, masked_crc32c, unmask_crc32c
from repro.common.errors import CorruptStreamError


class TestCrc32c:
    def test_known_vectors(self):
        # RFC 3720 test vectors.
        assert crc32c(b"") == 0
        assert crc32c(b"\x00" * 32) == 0x8A9136AA
        assert crc32c(b"\xff" * 32) == 0x62A8AB43
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_incremental(self):
        data = b"incremental crc check"
        assert crc32c(data) == crc32c(data[7:], crc32c(data[:7]))

    def test_mask_roundtrip(self):
        for data in (b"", b"a", b"snappy framing"):
            assert unmask_crc32c(masked_crc32c(data)) == crc32c(data)

    def test_mask_changes_value(self):
        assert masked_crc32c(b"x") != crc32c(b"x")


class TestFraming:
    def test_roundtrip_small(self):
        data = b"framed snappy stream " * 100
        assert decompress_framed(compress_framed(data)) == data

    def test_roundtrip_empty(self):
        stream = compress_framed(b"")
        assert stream == STREAM_IDENTIFIER
        assert decompress_framed(stream) == b""

    def test_roundtrip_multi_chunk(self):
        data = b"ABCD" * (MAX_CHUNK_DATA // 2)  # > one chunk of source
        stream = compress_framed(data)
        types = [t for t, _ in iter_frames(stream)]
        assert types[0] == CHUNK_STREAM_IDENTIFIER
        assert types.count(CHUNK_COMPRESSED) + types.count(CHUNK_UNCOMPRESSED) >= 2
        assert decompress_framed(stream) == data

    def test_incompressible_data_stored_uncompressed(self):
        import random

        rng = random.Random(3)
        data = bytes(rng.getrandbits(8) for _ in range(8192))
        types = [t for t, _ in iter_frames(compress_framed(data))]
        assert CHUNK_UNCOMPRESSED in types

    def test_streaming_writes_accumulate(self):
        stream = SnappyFramedStream()
        pieces = [stream.write(b"x" * 30000) for _ in range(5)]
        pieces.append(stream.flush())
        assert decompress_framed(b"".join(pieces)) == b"x" * 150000

    def test_padding_chunks_skipped(self):
        data = b"padded"
        stream = compress_framed(data)
        padded = (
            stream[: len(STREAM_IDENTIFIER)]
            + bytes([CHUNK_PADDING, 3, 0, 0]) + b"\x00" * 3
            + stream[len(STREAM_IDENTIFIER):]
        )
        assert decompress_framed(padded) == data

    def test_crc_mismatch_rejected(self):
        stream = bytearray(compress_framed(b"check me " * 50))
        stream[len(STREAM_IDENTIFIER) + 4] ^= 0xFF  # flip a CRC byte
        with pytest.raises(CorruptStreamError):
            decompress_framed(bytes(stream))

    def test_missing_identifier_rejected(self):
        stream = compress_framed(b"hello")[len(STREAM_IDENTIFIER):]
        with pytest.raises(CorruptStreamError):
            decompress_framed(stream)

    def test_bad_identifier_payload_rejected(self):
        with pytest.raises(CorruptStreamError):
            decompress_framed(b"\xff\x06\x00\x00sNOPpY")

    def test_unskippable_reserved_chunk_rejected(self):
        stream = STREAM_IDENTIFIER + bytes([0x02, 1, 0, 0, 0])
        with pytest.raises(CorruptStreamError):
            decompress_framed(stream)

    def test_truncated_chunk_rejected(self):
        stream = compress_framed(b"truncate " * 100)
        with pytest.raises(CorruptStreamError):
            decompress_framed(stream[:-3])


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=5000))
def test_roundtrip_arbitrary(data):
    assert decompress_framed(compress_framed(data)) == data
