"""Unit tests for the raw-DEFLATE wire-format module.

Differential tests against stdlib zlib live in
``test_flate_differential.py``; this file covers the module's own contract:
block-type selection, header validation, and corruption detection.
"""

import zlib

import pytest

from repro.algorithms.deflate import (
    DEFLATE_INFO,
    MAX_MATCH,
    MAX_WINDOW,
    DeflateCodec,
    deflate_raw,
    inflate_raw,
)
from repro.common.bitio import BitWriter
from repro.common.errors import ConfigError, CorruptStreamError


class TestRoundTrip:
    def test_empty(self):
        assert inflate_raw(deflate_raw(b"")) == b""

    def test_single_byte(self):
        assert inflate_raw(deflate_raw(b"z")) == b"z"

    def test_all_levels(self):
        data = b"deflate per-level round trip " * 120
        for level in range(DEFLATE_INFO.min_level, DEFLATE_INFO.max_level + 1):
            assert inflate_raw(deflate_raw(data, level=level)) == data

    def test_max_length_matches(self):
        # Runs longer than MAX_MATCH force length-258 copies (symbol 285,
        # zero extra bits) plus follow-up matches.
        data = b"\xaa" * (MAX_MATCH * 4 + 7)
        assert inflate_raw(deflate_raw(data)) == data

    def test_long_range_matches(self):
        # A repeat just inside the 32 KiB window exercises the largest
        # distance codes.
        unit = bytes(range(256)) * 120  # 30720 bytes < MAX_WINDOW
        data = unit + unit
        assert len(unit) < MAX_WINDOW
        assert inflate_raw(deflate_raw(data)) == data


class TestBlockSelection:
    def test_incompressible_data_uses_stored_blocks(self):
        state = 0x9E3779B97F4A7C15
        chunks = []
        for _ in range(1024):
            state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
            chunks.append(state.to_bytes(8, "little"))
        data = b"".join(chunks)
        stream = deflate_raw(data)
        # Stored framing costs 5 bytes per 64 KiB block.
        assert len(stream) <= len(data) + 10
        # First header bits: BFINAL=1 (or 0 for a split), BTYPE=00.
        assert stream[0] & 0b110 == 0

    def test_compressible_data_beats_stored(self):
        data = b"entropy coding wins here " * 400
        assert len(deflate_raw(data)) < len(data) // 4


class TestCorruption:
    def test_reserved_block_type(self):
        writer = BitWriter()
        writer.write(1, 1)  # BFINAL
        writer.write(3, 2)  # BTYPE=11: reserved
        with pytest.raises(CorruptStreamError):
            inflate_raw(writer.getvalue())

    def test_truncated_stored_header(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.write(0, 2)  # stored, but LEN/NLEN missing
        with pytest.raises(CorruptStreamError):
            inflate_raw(writer.getvalue())

    def test_stored_length_check_mismatch(self):
        stream = bytearray(deflate_raw(bytes(range(251)) * 40))  # stored block
        if stream[0] & 0b110 == 0:  # only meaningful if stored was chosen
            stream[2] ^= 0xFF  # break NLEN
            with pytest.raises(CorruptStreamError):
                inflate_raw(bytes(stream))

    def test_empty_input_raises(self):
        with pytest.raises(CorruptStreamError):
            inflate_raw(b"")

    def test_distance_before_stream_start(self):
        # A dynamic stream whose first symbol is a match cannot reference
        # history; build one via zlib on data with an early repeat, then
        # check that chopping the literal prefix is caught. Simpler: flip
        # bits across a valid stream and require decode-or-raise.
        reference = deflate_raw(b"abcdabcdabcd" * 300, level=9)
        payload = inflate_raw(reference)
        for position in range(min(len(reference), 40)):
            corrupted = bytearray(reference)
            corrupted[position] ^= 0x10
            try:
                decoded = inflate_raw(bytes(corrupted))
            except CorruptStreamError:
                continue
            # Raw DEFLATE has no checksum, so a flip may still decode; it
            # must never crash with anything but CorruptStreamError though.
            assert isinstance(decoded, bytes)
        assert payload == b"abcdabcdabcd" * 300

    def test_truncation_matrix(self):
        stream = deflate_raw(b"truncation target " * 200)
        for keep in range(len(stream)):
            try:
                inflate_raw(stream[:keep])
            except CorruptStreamError:
                continue


class TestCodecContract:
    def test_info(self):
        assert DEFLATE_INFO.name == "deflate"
        assert DEFLATE_INFO.fixed_window_bytes == MAX_WINDOW
        assert DEFLATE_INFO.clamp_level(None) == DEFLATE_INFO.default_level
        assert DEFLATE_INFO.clamp_level(99) == DEFLATE_INFO.max_level

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            DeflateCodec().compress(b"x", window_size=2 * MAX_WINDOW)

    def test_not_registered(self):
        # Raw DEFLATE carries no integrity trailer, so it must stay out of
        # the registry (whose fuzz matrix demands corruption detection).
        from repro.algorithms.registry import available_codecs

        assert "deflate" not in available_codecs()

    def test_interop_is_the_point(self):
        data = b"the registry exclusion does not stop interop " * 30
        assert zlib.decompress(DeflateCodec().compress(data), -15) == data
