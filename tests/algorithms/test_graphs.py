"""Round-trip, self-description and corruption tests for codec graphs."""

import numpy as np
import pytest

from repro.algorithms.container import (
    MAX_GRAPH_STAGES,
    StageDescriptor,
    encode_stage_descriptors,
    try_decode_stage_descriptors,
)
from repro.algorithms.graphs import (
    GRAPH_FRAME,
    GRAPH_PRESETS,
    GraphCodec,
    build_stages,
    describe_frame,
    describe_graph,
    graph_presets,
)
from repro.algorithms.registry import available_codecs, get_codec
from repro.common.errors import ConfigError, CorruptStreamError

RNG = np.random.default_rng(7)

PAYLOADS = {
    "empty": b"",
    "one_byte": b"G",
    "text": b"composable codec graphs over reversible stages\n" * 40,
    "random": RNG.integers(0, 256, 4444, dtype=np.uint8).tobytes(),
    "floats": (np.cumsum(RNG.normal(0, 0.01, 600)) + 42).astype("<f8").tobytes(),
}


@pytest.mark.parametrize("preset", sorted(GRAPH_PRESETS))
@pytest.mark.parametrize("payload", sorted(PAYLOADS))
def test_every_preset_roundtrips(preset, payload):
    codec = get_codec(preset)
    data = PAYLOADS[payload]
    assert codec.decompress(codec.compress(data)) == data


def test_presets_are_registered_codecs():
    for preset in graph_presets():
        assert preset in available_codecs()
        codec = get_codec(preset)
        assert codec.info.name == preset
        assert not codec.info.supports_levels


def test_frames_are_self_describing():
    # Any graph decoder reconstructs the pipeline from the frame alone:
    # frames cross-decode under every other preset's codec instance.
    data = PAYLOADS["floats"]
    frames = {name: get_codec(name).compress(data) for name in graph_presets()}
    for name, frame in frames.items():
        for other in graph_presets():
            assert get_codec(other).decompress(frame) == data, (name, other)


def test_describe_frame_reports_pipeline():
    codec = get_codec("graph-plane-fse")
    info = describe_frame(codec.compress(PAYLOADS["floats"]))
    assert info["pipeline"] == "transpose(8) > delta(1) > fse"
    assert info["content_length"] == len(PAYLOADS["floats"])
    assert info["raw_escape"] is False


def test_describe_graph_labels():
    assert describe_graph(GRAPH_PRESETS["graph-delta-fse"]) == "delta(1) > fse"
    assert describe_graph(GRAPH_PRESETS["graph-lz-huff"]) == "lz77 > huffman"


def test_raw_escape_bounds_expansion():
    # A float pipeline fed text falls back to a raw-only pipeline; the
    # frame overhead is fixed, not proportional to the worst transform.
    codec = get_codec("graph-float-fse")
    data = PAYLOADS["random"]
    frame = codec.compress(data)
    assert len(frame) <= len(data) + 24
    info = describe_frame(frame)
    assert info["pipeline"] == "raw"
    assert info["raw_escape"] is True
    assert codec.decompress(frame) == data


def test_build_stages_validates_spec():
    with pytest.raises(ConfigError, match="at least one stage"):
        build_stages(())
    with pytest.raises(ConfigError, match="entropy backend"):
        build_stages((("delta", 1),))
    with pytest.raises(ConfigError, match="unknown stage"):
        build_stages((("wavelet", 2), ("fse",)))


class TestDescriptorWire:
    def test_roundtrip(self):
        table = (StageDescriptor(1, (4,)), StageDescriptor(18, ()))
        blob = encode_stage_descriptors(table)
        decoded, pos = try_decode_stage_descriptors(blob, 0)
        assert decoded == table
        assert pos == len(blob)

    def test_truncation_returns_none(self):
        blob = encode_stage_descriptors((StageDescriptor(1, (4,)),))
        for cut in range(len(blob)):
            assert try_decode_stage_descriptors(blob[:cut], 0) is None

    def test_zero_and_oversized_counts_raise(self):
        with pytest.raises(CorruptStreamError, match="empty pipeline"):
            try_decode_stage_descriptors(b"\x00", 0)
        with pytest.raises(CorruptStreamError, match="limit"):
            try_decode_stage_descriptors(bytes([MAX_GRAPH_STAGES + 1]), 0)

    def test_encode_rejects_oversized_tables(self):
        too_many = tuple(StageDescriptor(1, (1,)) for _ in range(MAX_GRAPH_STAGES + 1))
        with pytest.raises(ValueError):
            encode_stage_descriptors(too_many)
        with pytest.raises(ValueError):
            encode_stage_descriptors((StageDescriptor(1, (1, 2, 3, 4, 5)),))


class TestGraphFrameCorruption:
    """Targeted descriptor-table attacks beyond the generic fuzz matrix."""

    def _frame_parts(self, data=b"graph corruption probe " * 30):
        codec = get_codec("graph-delta-fse")
        frame = codec.compress(data)
        _, header_len = GRAPH_FRAME.try_decode_preamble(frame)
        return codec, frame, header_len, data

    def test_bad_stage_id_raises(self):
        codec, frame, header_len, _ = self._frame_parts()
        mutated = bytearray(frame)
        # Descriptor table: count, then the first stage id varint.
        mutated[header_len + 1] = 99
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(mutated))

    def test_truncated_descriptor_table_raises(self):
        codec, frame, header_len, _ = self._frame_parts()
        # Cut inside the descriptor table (checksum trailer stripped too).
        truncated = frame[: header_len + 1]
        with pytest.raises(CorruptStreamError):
            codec.decompress(truncated)

    def test_transform_terminated_pipeline_raises(self):
        # A frame whose descriptor table ends in a transform (mismatched
        # inverse): decoder must reject it before running any inverse.
        data = b"mismatched inverse probe"
        body = build_stages((("delta", 1), ("fse",)))[0].forward(data)
        from repro.algorithms.container import append_content_checksum

        frame = (
            GRAPH_FRAME.encode_preamble(content_length=len(data))
            + encode_stage_descriptors((StageDescriptor(1, (1,)),))
            + body
        )
        with pytest.raises(CorruptStreamError, match="transform stage"):
            get_codec("graph-delta-fse").decompress(
                append_content_checksum(frame, data)
            )

    def test_wrong_declared_length_raises(self):
        codec, frame, header_len, data = self._frame_parts()
        # Re-frame with a lying content length over the same body+table.
        from repro.algorithms.container import append_content_checksum

        body = frame[header_len:-4]
        lying = GRAPH_FRAME.encode_preamble(content_length=len(data) + 1) + body
        with pytest.raises(CorruptStreamError):
            codec.decompress(append_content_checksum(lying, data))


def test_graph_codec_rejects_foreign_frames():
    codec = get_codec("graph-delta-fse")
    for other in ("zstd", "snappy-framed", "flate"):
        frame = get_codec(other).compress(PAYLOADS["text"])
        with pytest.raises(CorruptStreamError):
            codec.decompress(frame)


def test_custom_graph_codec_outside_presets():
    codec = GraphCodec("graph-custom", (("transpose", 4), ("huffman",)))
    data = PAYLOADS["floats"]
    assert codec.decompress(codec.compress(data)) == data
    # Its frames decode under any preset codec too (self-describing).
    assert get_codec("graph-delta-fse").decompress(codec.compress(data)) == data
