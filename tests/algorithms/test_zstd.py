"""Unit tests for the ZStd-like codec: container, levels, windows, sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lz77 import Copy, Literal
from repro.algorithms.zstd import (
    BLOCK_SIZE,
    DEFAULT_LEVEL,
    MAGIC,
    MAX_LEVEL,
    MIN_LEVEL,
    SequenceCoder,
    SequenceTriple,
    ZstdCodec,
    code_to_value,
    level_params,
    sequences_to_tokens,
    tokens_to_sequences,
    value_to_code,
)
from repro.common.errors import ConfigError, CorruptStreamError


@pytest.fixture(scope="module")
def codec():
    return ZstdCodec()


class TestRoundTrip:
    def test_sample_inputs(self, codec, sample_inputs):
        for name, data in sample_inputs.items():
            assert codec.decompress(codec.compress(data)) == data, name

    @pytest.mark.parametrize("level", [-7, -1, 1, 3, 9, 19, 22])
    def test_levels_roundtrip(self, codec, level):
        data = b"levels change effort, not the format " * 80
        assert codec.decompress(codec.compress(data, level=level)) == data

    @pytest.mark.parametrize("window", [1 << 15, 1 << 17, 1 << 20])
    def test_windows_roundtrip(self, codec, window):
        data = b"window " * 600
        assert codec.decompress(codec.compress(data, window_size=window)) == data

    def test_multi_block_input(self, codec):
        data = (b"block boundary " * 1000 + b"X") * 10  # > 128 KiB
        assert len(data) > BLOCK_SIZE
        assert codec.decompress(codec.compress(data)) == data

    def test_rle_block(self, codec):
        data = b"\x42" * 5000
        compressed = codec.compress(data)
        assert len(compressed) < 50
        assert codec.decompress(compressed) == data

    def test_incompressible_falls_back_to_raw_block(self, codec):
        import random

        rng = random.Random(4)
        data = bytes(rng.getrandbits(8) for _ in range(10000))
        compressed = codec.compress(data)
        assert len(compressed) <= len(data) + 32  # bounded expansion
        assert codec.decompress(compressed) == data

    def test_heavyweight_beats_snappy_on_text(self, codec, sample_inputs):
        from repro.algorithms.snappy import SnappyCodec

        text = sample_inputs["text"]
        zstd_size = len(codec.compress(text, level=DEFAULT_LEVEL))
        snappy_size = len(SnappyCodec().compress(text))
        assert zstd_size < snappy_size

    def test_magic_prefix(self, codec):
        assert codec.compress(b"x").startswith(MAGIC)

    def test_compressed_output_decodable_after_reencode(self, codec):
        data = b"idempotence check " * 50
        once = codec.compress(data)
        twice = codec.compress(once)
        assert codec.decompress(codec.decompress(twice)) == data


class TestLevels:
    def test_level_clamping(self, codec):
        data = b"clamp " * 200
        assert codec.compress(data, level=-100) == codec.compress(data, level=MIN_LEVEL)
        assert codec.compress(data, level=100) == codec.compress(data, level=MAX_LEVEL)

    def test_level_params_monotone_effort(self):
        previous_entries = 0
        previous_assoc = 0
        for level in range(MIN_LEVEL, MAX_LEVEL + 1):
            params = level_params(level)
            assert (1 << params.hash_table_log) >= previous_entries
            assert params.associativity >= previous_assoc
            previous_entries = 1 << params.hash_table_log
            previous_assoc = params.associativity

    def test_default_window_grows_with_level(self):
        assert level_params(22).default_window > level_params(1).default_window

    def test_high_level_ratio_not_worse_on_structured_data(self, codec):
        from repro.corpus.sources import text_source

        data = text_source(5, 60_000)
        low = len(codec.compress(data, level=-5))
        high = len(codec.compress(data, level=9))
        assert high <= low * 1.02

    def test_bad_window_rejected(self, codec):
        with pytest.raises(ConfigError):
            codec.compress(b"x" * 100, window_size=1000)

    @pytest.mark.parametrize("window", [1 << 7, 1 << 9, 1 << 28])
    def test_out_of_range_window_rejected_at_compress_time(self, codec, window):
        """The encoder must never emit a frame its own decoder rejects:
        window logs outside [10, 27] fail fast with ConfigError."""
        with pytest.raises(ConfigError):
            codec.compress(b"x" * 100, window_size=window)

    def test_boundary_windows_roundtrip(self, codec):
        data = b"boundary windows " * 100
        for window in (1 << 10, 1 << 27):
            assert codec.decompress(codec.compress(data, window_size=window)) == data


class TestSequenceConversion:
    def test_tokens_to_sequences_roundtrip(self):
        tokens = [
            Literal(b"abcd"),
            Copy(offset=4, length=8),
            Copy(offset=2, length=5),
            Literal(b"tail"),
        ]
        sequences, literals, trailing = tokens_to_sequences(tokens)
        assert len(sequences) == 2
        assert sequences[0] == SequenceTriple(4, 4, 8)
        assert sequences[1] == SequenceTriple(0, 2, 5)
        assert literals == b"abcdtail"
        assert trailing == 4
        back = sequences_to_tokens(sequences, literals, trailing)
        from repro.algorithms.lz77 import decode_tokens

        assert decode_tokens(back) == decode_tokens(tokens)

    def test_literal_overrun_rejected(self):
        with pytest.raises(CorruptStreamError):
            sequences_to_tokens([SequenceTriple(10, 1, 4)], b"short", 0)

    def test_trailing_mismatch_rejected(self):
        with pytest.raises(CorruptStreamError):
            sequences_to_tokens([SequenceTriple(2, 1, 4)], b"abcdef", 1)


class TestSeqToCode:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 4, 7, 8, 100, 65535, 1 << 20])
    def test_roundtrip(self, value):
        code, width, bits = value_to_code(value)
        assert code_to_value(code, bits) == value
        assert bits < (1 << width) if width else bits == 0

    def test_code_zero_is_value_zero(self):
        assert value_to_code(0) == (0, 0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            value_to_code(-1)

    def test_code_is_bit_length(self):
        assert value_to_code(1)[0] == 1
        assert value_to_code(255)[0] == 8
        assert value_to_code(256)[0] == 9


class TestSequenceCoder:
    def test_roundtrip(self):
        sequences = [SequenceTriple(i % 7, (i % 30) + 1, (i % 11) + 3) for i in range(200)]
        blob = SequenceCoder(9).encode(sequences)
        decoded, consumed = SequenceCoder.decode(blob, 0)
        assert consumed == len(blob)
        assert decoded == sequences

    def test_empty_sequences(self):
        blob = SequenceCoder(9).encode([])
        decoded, _ = SequenceCoder.decode(blob, 0)
        assert decoded == []

    def test_truncated_rejected(self):
        sequences = [SequenceTriple(1, 2, 4)] * 20
        blob = SequenceCoder(9).encode(sequences)
        with pytest.raises(CorruptStreamError):
            SequenceCoder.decode(blob[: len(blob) // 2], 0)


class TestCorruptFrames:
    def test_bad_magic(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"NOPE" + b"\x00" * 20)

    def test_bad_version(self, codec):
        frame = bytearray(codec.compress(b"hello world" * 10))
        frame[4] = 99
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(frame))

    def test_bad_window_log(self, codec):
        frame = bytearray(codec.compress(b"hello world" * 10))
        frame[5] = 40
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(frame))

    def test_truncated_frame(self, codec):
        frame = codec.compress(b"truncate me " * 100)
        with pytest.raises(CorruptStreamError):
            codec.decompress(frame[: len(frame) - 5])

    def test_missing_last_block(self, codec):
        frame = bytearray(codec.compress(b"q" * 10))
        # Clear the last-block flag on the (single) block tag.
        # Frame: magic(4) version(1) windowlog(1) varint-len... find block tag.
        pos = 6
        from repro.common.varint import decode_varint

        _, pos = decode_varint(bytes(frame), pos)
        frame[pos] &= 0x7F
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(frame))

    def test_declared_length_mismatch(self, codec):
        frame = bytearray(codec.compress(b"hello"))
        # Inflate the declared content size (single-byte varint here).
        from repro.common.varint import decode_varint, encode_varint

        value, end = decode_varint(bytes(frame), 6)
        assert end == 7 and len(encode_varint(value + 1)) == 1
        frame[6] = value + 1
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(frame))


class TestHardwareOverrides:
    def test_lz77_override_restricts_offsets(self):
        from repro.algorithms.lz77 import Lz77Params

        data = (b"far away pattern " * 400) + b"far away pattern "
        hw = ZstdCodec(lz77_params=Lz77Params(window_size=2048))
        assert hw.decompress(hw.compress(data)) == data

    def test_accuracy_override_roundtrip(self):
        hw = ZstdCodec(accuracy_log=7)
        data = b"accuracy " * 300
        assert hw.decompress(hw.compress(data)) == data

    def test_smaller_window_never_improves_ratio(self, codec):
        from repro.algorithms.lz77 import Lz77Params
        from repro.corpus.sources import text_source

        data = text_source(9, 40_000)
        small = ZstdCodec(lz77_params=Lz77Params(window_size=1024))
        big = ZstdCodec(lz77_params=Lz77Params(window_size=65536))
        assert len(small.compress(data)) >= len(big.compress(data))


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=5000), st.sampled_from([-5, 1, 3, 9]))
def test_roundtrip_arbitrary(data, level):
    codec = ZstdCodec()
    assert codec.decompress(codec.compress(data, level=level)) == data
