"""Unit + property tests for the tANS/FSE entropy coder."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.fse import (
    DEFAULT_ACCURACY_LOG,
    FseTable,
    normalize_counts,
    spread_symbols,
)
from repro.common.errors import CorruptStreamError


class TestNormalization:
    def test_counts_sum_to_table_size(self):
        normalized = normalize_counts({0: 100, 1: 50, 2: 3}, 9)
        assert sum(normalized.values()) == 512

    def test_every_present_symbol_kept(self):
        normalized = normalize_counts({0: 1_000_000, 1: 1}, 9)
        assert normalized[1] >= 1

    def test_zero_count_symbols_dropped(self):
        normalized = normalize_counts({0: 10, 1: 0}, 9)
        assert 1 not in normalized

    def test_proportionality(self):
        normalized = normalize_counts({0: 300, 1: 100}, 9)
        assert normalized[0] == pytest.approx(3 * normalized[1], rel=0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts({}, 9)

    def test_accuracy_log_bounds(self):
        with pytest.raises(ValueError):
            normalize_counts({0: 1}, 4)
        with pytest.raises(ValueError):
            normalize_counts({0: 1}, 13)

    def test_too_many_symbols_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts({i: 1 for i in range(33)}, 5)

    def test_many_rare_symbols_still_normalizes(self):
        # 30 symbols, one huge: shaving path at accuracy log 5 (size 32).
        freqs = {i: 1 for i in range(30)}
        freqs[30] = 10_000
        normalized = normalize_counts(freqs, 5)
        assert sum(normalized.values()) == 32


class TestSpread:
    def test_covers_all_slots(self):
        normalized = normalize_counts({0: 5, 1: 3, 2: 2}, 6)
        spread = spread_symbols(normalized, 6)
        assert len(spread) == 64
        assert all(s in normalized for s in spread)

    def test_occurrence_counts_match(self):
        normalized = normalize_counts({0: 7, 1: 1}, 6)
        spread = spread_symbols(normalized, 6)
        assert spread.count(0) == normalized[0]
        assert spread.count(1) == normalized[1]

    def test_symbols_are_scattered_not_contiguous(self):
        normalized = {0: 32, 1: 32}
        spread = spread_symbols(normalized, 6)
        # zstd spread interleaves; a contiguous split would have one switch.
        switches = sum(1 for a, b in zip(spread, spread[1:]) if a != b)
        assert switches > 2


class TestEncodeDecode:
    def _roundtrip(self, symbols, accuracy_log=DEFAULT_ACCURACY_LOG):
        freqs = {s: symbols.count(s) for s in set(symbols)}
        table = FseTable.from_frequencies(freqs, accuracy_log)
        payload, state, bits = table.encode(symbols)
        assert table.decode(payload, state, len(symbols)) == symbols
        return payload, bits

    def test_simple_roundtrip(self):
        self._roundtrip([0, 1, 0, 2, 0, 1, 0, 0, 2, 1] * 30)

    def test_single_symbol_costs_zero_bits(self):
        payload, bits = self._roundtrip([5] * 100)
        assert bits == 0

    def test_empty_sequence(self):
        table = FseTable.from_frequencies({0: 1, 1: 1})
        payload, state, _ = table.encode([])
        assert table.decode(payload, state, 0) == []

    def test_compression_approaches_entropy(self):
        import random

        rng = random.Random(3)
        symbols = [0 if rng.random() < 0.9 else 1 for _ in range(4000)]
        payload, bits = self._roundtrip(symbols)
        p = symbols.count(0) / len(symbols)
        entropy = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
        assert bits / len(symbols) < entropy * 1.15 + 0.1

    def test_fse_beats_bytewise_packing_on_skewed_data(self):
        symbols = ([3] * 95 + [7] * 4 + [11]) * 40
        payload, bits = self._roundtrip(symbols)
        assert bits < len(symbols) * 2  # far below 8 bits/symbol

    @pytest.mark.parametrize("acc", [5, 7, 9, 12])
    def test_accuracy_logs(self, acc):
        self._roundtrip([0, 1, 2, 3] * 50, accuracy_log=acc)

    def test_symbol_not_in_table_rejected(self):
        table = FseTable.from_frequencies({0: 3, 1: 1})
        with pytest.raises(ValueError):
            table.encode([2])

    def test_bad_initial_state_rejected(self):
        table = FseTable.from_frequencies({0: 3, 1: 1})
        payload, state, _ = table.encode([0, 1, 0])
        with pytest.raises(CorruptStreamError):
            table.decode(payload, 5, 3)

    def test_corrupt_payload_detected_by_sentinel(self):
        table = FseTable.from_frequencies({0: 3, 1: 2, 2: 1}, 7)
        symbols = [0, 1, 2, 0, 1, 0] * 20
        payload, state, _ = table.encode(symbols)
        corrupted = bytearray(payload)
        corrupted[0] ^= 0xFF
        try:
            decoded = table.decode(bytes(corrupted), state, len(symbols))
        except CorruptStreamError:
            return
        assert decoded != symbols or True  # sentinel may pass; decode differs

    def test_encode_cost_bits(self):
        table = FseTable.from_frequencies({0: 3, 1: 1}, 9)
        assert table.encode_cost_bits(0) < table.encode_cost_bits(1)


class TestHeaderSerialization:
    def test_counts_roundtrip(self):
        table = FseTable.from_frequencies({0: 10, 3: 5, 7: 1}, 8)
        blob = table.serialize_counts(8)
        restored, consumed = FseTable.deserialize_counts(blob, 8, 8)
        assert consumed == len(blob)
        assert restored.normalized == table.normalized

    def test_decode_with_deserialized_table(self):
        symbols = [0, 3, 7, 3, 0, 0, 3] * 25
        table = FseTable.from_frequencies({s: symbols.count(s) for s in set(symbols)}, 8)
        payload, state, _ = table.encode(symbols)
        restored, _ = FseTable.deserialize_counts(table.serialize_counts(8), 8, 8)
        assert restored.decode(payload, state, len(symbols)) == symbols

    def test_bad_sum_rejected(self):
        with pytest.raises(CorruptStreamError):
            FseTable.deserialize_counts(b"\x00" * 40, 8, 8)

    def test_symbol_outside_alphabet_rejected(self):
        table = FseTable.from_frequencies({9: 4}, 5)
        with pytest.raises(ValueError):
            table.serialize_counts(4)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 15), min_size=1, max_size=600),
    st.sampled_from([6, 9, 11]),
)
def test_roundtrip_arbitrary_symbol_lists(symbols, accuracy_log):
    freqs = {s: symbols.count(s) for s in set(symbols)}
    table = FseTable.from_frequencies(freqs, accuracy_log)
    payload, state, _ = table.encode(symbols)
    assert table.decode(payload, state, len(symbols)) == symbols
