"""Property-based invariants of the canonical Huffman coder.

``test_huffman.py`` covers the concrete cases; this file states the
*algebraic* contract hypothesis can hunt counterexamples for, over skewed,
uniform and degenerate symbol distributions:

* package-merge lengths form a **complete** prefix code (Kraft sum == 1)
  whenever two or more symbols are present, and respect ``max_bits``;
* canonical code assignment is prefix-free and ordered (shorter first,
  ties by symbol) — the property that lets decoders rebuild codes from
  lengths alone;
* the flat decode table agrees with the code table on every entry;
* encode→decode is the identity, and never beats the entropy bound.
"""

import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.huffman import (
    HuffmanTable,
    _reverse_bits,
    build_code_lengths,
    canonical_codes,
    decode_symbols,
    encode_symbols,
)
from repro.common.bitio import BitReader

MAX_BITS_CHOICES = [8, 11, 15]


@st.composite
def skewed_frequencies(draw, min_symbols=1, max_symbols=48):
    """Distributions with up to 2^12:1 skew, incl. uniform and degenerate."""
    count = draw(st.integers(min_symbols, max_symbols))
    symbols = draw(
        st.lists(st.integers(0, 255), min_size=count, max_size=count, unique=True)
    )
    shape = draw(st.sampled_from(["uniform", "skewed", "mixed"]))
    if shape == "uniform":
        weight = draw(st.integers(1, 1000))
        return {s: weight for s in symbols}
    exponents = draw(
        st.lists(st.integers(0, 12), min_size=count, max_size=count)
    )
    if shape == "skewed":
        return {s: 1 << e for s, e in zip(symbols, exponents)}
    extras = draw(st.lists(st.integers(1, 99), min_size=count, max_size=count))
    return {s: (1 << e) + x for s, e, x in zip(symbols, exponents, extras)}


def kraft(lengths):
    return sum(Fraction(1, 1 << l) for l in lengths.values())


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), st.sampled_from(MAX_BITS_CHOICES))
def test_lengths_complete_and_limited(freqs, max_bits):
    lengths = build_code_lengths(freqs, max_bits=max_bits)
    assert set(lengths) == set(freqs)
    assert all(1 <= l <= max_bits for l in lengths.values())
    if len(freqs) >= 2:
        # Optimal prefix codes are complete: an unused leaf could shorten one.
        assert kraft(lengths) == 1
    else:
        assert list(lengths.values()) == [1]


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(min_symbols=2), st.sampled_from(MAX_BITS_CHOICES))
def test_more_frequent_symbols_never_get_longer_codes(freqs, max_bits):
    lengths = build_code_lengths(freqs, max_bits=max_bits)
    for a in freqs:
        for b in freqs:
            if freqs[a] > freqs[b]:
                assert lengths[a] <= lengths[b], (a, b)


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(min_symbols=2), st.sampled_from(MAX_BITS_CHOICES))
def test_canonical_assignment_is_prefix_free_and_ordered(freqs, max_bits):
    codes = canonical_codes(build_code_lengths(freqs, max_bits=max_bits))
    ordered = sorted(codes.items(), key=lambda kv: (kv[1][1], kv[0]))
    previous = None
    for symbol, (code, length) in ordered:
        assert 0 <= code < (1 << length)
        if previous is not None:
            prev_code, prev_len = previous
            # Canonical: strictly increasing when left-aligned to max length.
            assert code << (max_bits - length) > prev_code << (max_bits - prev_len)
            # Prefix-free: the previous code is never a prefix of this one.
            assert code >> (length - prev_len) != prev_code
        previous = (code, length)


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), st.sampled_from(MAX_BITS_CHOICES))
def test_decode_table_agrees_with_codes(freqs, max_bits):
    table = HuffmanTable.from_frequencies(freqs, max_bits=max_bits)
    flat = table.decode_table()
    assert len(flat) == 1 << max_bits
    for symbol, (code, length) in table.codes.items():
        window = _reverse_bits(code, length)
        # Every padding of the reversed code maps back to the symbol.
        for pad in range(1 << (max_bits - length)):
            assert flat[window | (pad << length)] == (symbol, length)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=1, max_size=3000), st.sampled_from(MAX_BITS_CHOICES))
def test_roundtrip_and_entropy_bound(data, max_bits):
    freqs = {b: data.count(b) for b in set(data)}
    table = HuffmanTable.from_frequencies(freqs, max_bits=max_bits)
    payload = encode_symbols(data, table)
    assert bytes(decode_symbols(payload, len(data), table)) == data
    # Shannon lower bound: no prefix code beats the entropy of the source.
    entropy_bits = -sum(
        f * math.log2(f / len(data)) for f in freqs.values()
    )
    assert table.encoded_bit_length(freqs) >= entropy_bits - 1e-6
    assert len(payload) * 8 >= entropy_bits - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=2, max_size=1500))
def test_stream_decodes_incrementally(data):
    # The LSB-first stream must be decodable code-by-code with a BitReader —
    # the exact access pattern of the speculative hardware expander.
    freqs = {b: data.count(b) for b in set(data)}
    table = HuffmanTable.from_frequencies(freqs, max_bits=15)
    flat = table.decode_table()
    reader = BitReader(encode_symbols(data, table))
    out = bytearray()
    for _ in range(len(data)):
        symbol, length = flat[reader.peek_padded(table.max_bits)]
        assert symbol >= 0
        reader.skip(length)
        out.append(symbol)
    assert bytes(out) == data
