"""Byte-exact golden wire-format vectors for every codec.

The frames under ``tests/data/golden/`` pin each codec's output bytes: any
change to headers, match heuristics, entropy coding or checksums shows up
here as a byte diff, forcing a deliberate ``GENERATOR_VERSION`` bump plus
``python -m repro.tools.regen_golden`` rather than a silent format drift
(which would also invalidate the benchmark disk cache without anyone
noticing).
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.algorithms.registry import available_codecs
from repro.hcbench.suite import GENERATOR_VERSION
from repro.tools.regen_golden import (
    EXTRA_CODECS,
    MANIFEST_SCHEMA,
    _codec_factories,
    golden_inputs,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "golden"

REGEN_HINT = (
    "codec output changed: bump GENERATOR_VERSION in repro.hcbench.suite and "
    "run `python -m repro.tools.regen_golden`"
)


@pytest.fixture(scope="module")
def manifest() -> dict:
    path = GOLDEN_DIR / "manifest.json"
    assert path.is_file(), "golden vectors missing; run repro.tools.regen_golden"
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def codecs() -> dict:
    return _codec_factories()


@pytest.fixture(scope="module")
def inputs() -> dict:
    return golden_inputs()


class TestManifest:
    def test_schema(self, manifest):
        assert manifest["manifest_schema"] == MANIFEST_SCHEMA

    def test_tied_to_generator_version(self, manifest):
        assert manifest["generator_version"] == GENERATOR_VERSION, REGEN_HINT

    def test_covers_every_registered_codec(self, manifest):
        assert manifest["registered_codecs"] == available_codecs(), REGEN_HINT
        covered = {v["codec"] for v in manifest["vectors"]}
        assert covered == set(available_codecs()) | set(EXTRA_CODECS)

    def test_every_input_covered_per_codec(self, manifest, inputs):
        by_codec: dict = {}
        for vector in manifest["vectors"]:
            by_codec.setdefault(vector["codec"], set()).add(vector["input"])
        for codec, seen in by_codec.items():
            assert seen == set(inputs), codec

    def test_inputs_regenerate_identically(self, manifest, inputs):
        # The synthesized inputs are part of the contract: if make_rng or
        # the seed drifts, every frame comparison below would mislead.
        digests = {
            v["input"]: v["input_sha256"] for v in manifest["vectors"]
        }
        for name, data in inputs.items():
            assert hashlib.sha256(data).hexdigest() == digests[name], name


class TestFrames:
    def test_encoders_reproduce_frames_byte_exactly(self, manifest, codecs, inputs):
        for vector in manifest["vectors"]:
            stored = (GOLDEN_DIR / vector["path"]).read_bytes()
            assert len(stored) == vector["frame_bytes"], vector["path"]
            assert hashlib.sha256(stored).hexdigest() == vector["frame_sha256"], (
                vector["path"]
            )
            fresh = codecs[vector["codec"]].compress(
                inputs[vector["input"]], level=vector["level"]
            )
            assert fresh == stored, f"{vector['path']}: {REGEN_HINT}"

    def test_decoders_roundtrip_stored_frames(self, manifest, codecs, inputs):
        for vector in manifest["vectors"]:
            stored = (GOLDEN_DIR / vector["path"]).read_bytes()
            decoded = codecs[vector["codec"]].decompress(stored)
            assert decoded == inputs[vector["input"]], vector["path"]

    def test_no_orphan_frames_on_disk(self, manifest):
        listed = {v["path"] for v in manifest["vectors"]}
        on_disk = {
            str(p.relative_to(GOLDEN_DIR))
            for p in GOLDEN_DIR.rglob("*.bin")
        }
        assert on_disk == listed


def _chunks(data: bytes, size):
    """Split ``data`` into feed-sized pieces (``None`` = whole buffer)."""
    if size is None or size >= max(1, len(data)):
        return [data]
    return [data[i : i + size] for i in range(0, len(data), size)]


#: Feed granularities for the streaming-equivalence sweep: pathological
#: (1 byte), prime-misaligned (7), page-ish (4096), and whole-buffer.
CHUNK_SIZES = [1, 7, 4096, None]


class TestStreamingParity:
    """The streaming path must be bit-identical to one-shot at any chunking.

    One-shot output is already pinned byte-exactly by :class:`TestFrames`,
    so asserting streaming output against the stored frames proves
    streaming == one-shot == golden for every codec and vector.
    """

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streaming_compress_matches_golden_frames(
        self, manifest, codecs, inputs, chunk_size
    ):
        for vector in manifest["vectors"]:
            stored = (GOLDEN_DIR / vector["path"]).read_bytes()
            ctx = codecs[vector["codec"]].compress_context(level=vector["level"])
            out = b"".join(
                ctx.feed(piece)
                for piece in _chunks(inputs[vector["input"]], chunk_size)
            )
            out += ctx.flush()
            assert out == stored, (vector["path"], chunk_size, REGEN_HINT)
            assert ctx.finished

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streaming_decompress_matches_inputs(
        self, manifest, codecs, inputs, chunk_size
    ):
        for vector in manifest["vectors"]:
            stored = (GOLDEN_DIR / vector["path"]).read_bytes()
            ctx = codecs[vector["codec"]].decompress_context()
            decoded = b"".join(
                ctx.feed(piece) for piece in _chunks(stored, chunk_size)
            )
            decoded += ctx.flush()
            assert decoded == inputs[vector["input"]], (vector["path"], chunk_size)
            assert ctx.finished
