"""Property-based invariants of the FSE (tANS) coder.

Complements the concrete cases in ``test_fse.py`` with the algebraic
contract, exercised over skewed, uniform and degenerate distributions:

* ``normalize_counts`` always produces a distribution summing to exactly
  ``2**accuracy_log`` with every present symbol kept encodable (count >= 1);
* ``spread_symbols`` is a permutation-with-multiplicity of the normalized
  counts over the whole state table;
* every decode-table entry covers a valid ``[baseline, baseline+2^bits)``
  sub-interval of the state space;
* encode→decode is the identity for any symbol sequence, at any accuracy;
* truncating the payload is always detected (sentinel-state check).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.fse import (
    MAX_ACCURACY_LOG,
    MIN_ACCURACY_LOG,
    FseTable,
    normalize_counts,
    spread_symbols,
)
from repro.common.errors import CorruptStreamError

ACCURACY_LOGS = st.integers(MIN_ACCURACY_LOG, MAX_ACCURACY_LOG)


@st.composite
def skewed_frequencies(draw, min_symbols=1, max_symbols=30):
    """Raw counts with heavy skew, uniform and degenerate shapes."""
    count = draw(st.integers(min_symbols, max_symbols))
    symbols = draw(
        st.lists(st.integers(0, 63), min_size=count, max_size=count, unique=True)
    )
    shape = draw(st.sampled_from(["uniform", "skewed", "mixed"]))
    if shape == "uniform":
        weight = draw(st.integers(1, 5000))
        return {s: weight for s in symbols}
    exponents = draw(st.lists(st.integers(0, 14), min_size=count, max_size=count))
    if shape == "skewed":
        return {s: 1 << e for s, e in zip(symbols, exponents)}
    extras = draw(st.lists(st.integers(1, 999), min_size=count, max_size=count))
    return {s: (1 << e) + x for s, e, x in zip(symbols, exponents, extras)}


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), ACCURACY_LOGS)
def test_normalize_counts_invariants(freqs, accuracy_log):
    assume(len(freqs) <= 1 << accuracy_log)
    normalized = normalize_counts(freqs, accuracy_log)
    assert sum(normalized.values()) == 1 << accuracy_log
    assert set(normalized) == set(freqs)
    assert all(count >= 1 for count in normalized.values())


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), ACCURACY_LOGS)
def test_normalization_is_idempotent(freqs, accuracy_log):
    # A distribution already summing to the table size passes through
    # untouched, so re-normalizing a stored header never drifts.
    assume(len(freqs) <= 1 << accuracy_log)
    normalized = normalize_counts(freqs, accuracy_log)
    assert normalize_counts(normalized, accuracy_log) == normalized


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), ACCURACY_LOGS)
def test_spread_covers_table_with_exact_multiplicity(freqs, accuracy_log):
    assume(len(freqs) <= 1 << accuracy_log)
    normalized = normalize_counts(freqs, accuracy_log)
    spread = spread_symbols(normalized, accuracy_log)
    assert len(spread) == 1 << accuracy_log
    for symbol, count in normalized.items():
        assert spread.count(symbol) == count


@settings(max_examples=60, deadline=None)
@given(skewed_frequencies(), ACCURACY_LOGS)
def test_decode_entries_partition_state_space(freqs, accuracy_log):
    assume(len(freqs) <= 1 << accuracy_log)
    table = FseTable.from_frequencies(freqs, accuracy_log)
    size = table.table_size
    for entry in table.decode_entries:
        assert 0 <= entry.num_bits <= accuracy_log
        assert 0 <= entry.baseline
        assert entry.baseline + (1 << entry.num_bits) <= size
    # Per symbol, the covered sub-intervals tile the state space exactly once.
    covered = {s: 0 for s in table.normalized}
    for entry in table.decode_entries:
        covered[entry.symbol] += 1 << entry.num_bits
    assert all(covered[s] == size for s in covered)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 31), min_size=1, max_size=400),
    st.sampled_from([5, 7, 9, 12]),
)
def test_roundtrip_any_sequence(symbols, accuracy_log):
    freqs = {s: symbols.count(s) for s in set(symbols)}
    table = FseTable.from_frequencies(freqs, accuracy_log)
    payload, state, bit_length = table.encode(symbols)
    assert len(payload) * 8 - bit_length in range(8)
    assert table.decode(payload, state, len(symbols)) == symbols


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=8, max_size=300))
def test_truncated_payload_is_detected(symbols):
    # At least two distinct symbols so some states consume bits.
    assume(len(set(symbols)) >= 2)
    freqs = {s: symbols.count(s) for s in set(symbols)}
    table = FseTable.from_frequencies(freqs, 7)
    payload, state, _ = table.encode(symbols)
    assume(len(payload) >= 1)
    try:
        decoded = table.decode(payload[:-1], state, len(symbols))
    except CorruptStreamError:
        return
    # Dropping a byte can only go unnoticed if the tail carried no
    # information; then the decode must still be exact.
    assert decoded == symbols


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=200), ACCURACY_LOGS)
def test_header_roundtrip_rebuilds_identical_tables(symbols, accuracy_log):
    freqs = {s: symbols.count(s) for s in set(symbols)}
    table = FseTable.from_frequencies(freqs, accuracy_log)
    header = table.serialize_counts(alphabet_size=16)
    rebuilt, consumed = FseTable.deserialize_counts(header, 16, accuracy_log)
    assert consumed == len(header)
    assert rebuilt.normalized == table.normalized
    assert rebuilt.decode_entries == table.decode_entries
    payload, state, _ = table.encode(symbols)
    assert rebuilt.decode(payload, state, len(symbols)) == symbols
