"""Unit tests for size/frequency helpers."""

import pytest

from repro.common.units import (
    GB,
    KiB,
    MiB,
    bytes_per_cycle_to_gbps,
    ceil_log2,
    floor_log2,
    format_size,
    gbps_to_bytes_per_cycle,
    is_power_of_two,
)


class TestLogs:
    @pytest.mark.parametrize(
        "value, expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_ceil_log2(self, value, expected):
        assert ceil_log2(value) == expected

    @pytest.mark.parametrize("value, expected", [(1, 0), (2, 1), (3, 1), (4, 2), (1024, 10)])
    def test_floor_log2(self, value, expected):
        assert floor_log2(value) == expected

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            ceil_log2(bad)
        with pytest.raises(ValueError):
            floor_log2(bad)


class TestThroughputConversions:
    def test_bytes_per_cycle_to_gbps(self):
        # 5.7 B/cycle at 2 GHz = 11.4 GB/s (the paper's Snappy decomp point).
        assert bytes_per_cycle_to_gbps(5.7, 2e9) == pytest.approx(11.4)

    def test_inverse(self):
        assert gbps_to_bytes_per_cycle(11.4, 2e9) == pytest.approx(5.7)

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError):
            gbps_to_bytes_per_cycle(1.0, 0)

    def test_roundtrip(self):
        for gbps in (0.22, 1.1, 3.95, 16.0):
            back = bytes_per_cycle_to_gbps(gbps_to_bytes_per_cycle(gbps, 2e9), 2e9)
            assert back == pytest.approx(gbps)


class TestFormatSize:
    @pytest.mark.parametrize(
        "num, text",
        [(64 * KiB, "64K"), (2 * KiB, "2K"), (4 * MiB, "4M"), (512, "512B"), (1536, "1.5K")],
    )
    def test_paper_style_labels(self, num, text):
        assert format_size(num) == text

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)


class TestPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(20))

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 1000])
    def test_non_powers(self, bad):
        assert not is_power_of_two(bad)


def test_gb_is_decimal():
    assert GB == 10**9
