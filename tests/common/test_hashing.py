"""Unit tests for the LZ77 hash-function registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import (
    HASH_FUNCTIONS,
    get_hash_function,
    hash_multiplicative,
    hash_xor_shift,
    hash_zstd5,
    load_u32le,
)


class TestRegistry:
    def test_all_registered_functions_resolve(self):
        for name in HASH_FUNCTIONS:
            assert callable(get_hash_function(name))

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="multiplicative"):
            get_hash_function("sha256")


class TestHashProperties:
    @pytest.mark.parametrize("fn", [hash_multiplicative, hash_zstd5, hash_xor_shift])
    @pytest.mark.parametrize("bits", [9, 14, 17])
    def test_output_range(self, fn, bits):
        for word in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678):
            assert 0 <= fn(word, bits) < (1 << bits)

    @pytest.mark.parametrize("fn", [hash_multiplicative, hash_zstd5, hash_xor_shift])
    def test_deterministic(self, fn):
        assert fn(0xCAFEBABE, 14) == fn(0xCAFEBABE, 14)

    def test_distinct_functions_disagree_somewhere(self):
        words = range(0, 4096, 7)
        assert any(
            hash_multiplicative(w, 14) != hash_xor_shift(w, 14) for w in words
        )

    @given(st.integers(0, 2**32 - 1))
    def test_multiplicative_spreads_within_range(self, word):
        assert 0 <= hash_multiplicative(word, 14) < (1 << 14)

    def test_dispersion_is_reasonable(self):
        """Sequential words should not all collide into a few buckets."""
        buckets = {hash_multiplicative(w, 10) for w in range(2048)}
        assert len(buckets) > 512


class TestLoadU32:
    def test_little_endian(self):
        assert load_u32le(b"\x01\x02\x03\x04", 0) == 0x04030201

    def test_offset(self):
        assert load_u32le(b"\x00\x01\x02\x03\x04", 1) == 0x04030201

    def test_zero_pads_at_end(self):
        assert load_u32le(b"\xff", 0) == 0xFF
        assert load_u32le(b"", 0) == 0
