"""Unit tests for base-128 varints (the Snappy preamble encoding)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CorruptStreamError
from repro.common.varint import decode_varint, encode_varint


class TestEncode:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            ((1 << 32) - 1, b"\xff\xff\xff\xff\x0f"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_varint(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(1 << 64)


class TestDecode:
    def test_decode_returns_next_position(self):
        value, pos = decode_varint(b"\xac\x02rest")
        assert value == 300
        assert pos == 2

    def test_decode_from_offset(self):
        value, pos = decode_varint(b"xx\x05", 2)
        assert value == 5
        assert pos == 3

    def test_truncated_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_varint(b"\x80" * 11 + b"\x01")

    def test_32bit_limit_enforced(self):
        encoded = encode_varint(1 << 32)
        with pytest.raises(CorruptStreamError):
            decode_varint(encoded, max_bits=32)

    def test_32bit_max_accepted(self):
        value, _ = decode_varint(encode_varint((1 << 32) - 1), max_bits=32)
        assert value == (1 << 32) - 1


@given(st.integers(0, (1 << 64) - 1))
def test_roundtrip(value):
    decoded, pos = decode_varint(encode_varint(value))
    assert decoded == value
    assert pos == len(encode_varint(value))


@given(st.integers(0, (1 << 64) - 1), st.binary(max_size=8))
def test_roundtrip_with_trailing_garbage(value, tail):
    encoded = encode_varint(value)
    decoded, pos = decode_varint(encoded + tail)
    assert decoded == value
    assert pos == len(encoded)
