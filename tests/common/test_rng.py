"""Unit tests for deterministic RNG sub-streams."""

from repro.common.rng import make_rng


def test_same_seed_same_stream():
    a = make_rng(7).integers(0, 1 << 30, size=16)
    b = make_rng(7).integers(0, 1 << 30, size=16)
    assert (a == b).all()


def test_different_seeds_differ():
    a = make_rng(7).integers(0, 1 << 30, size=16)
    b = make_rng(8).integers(0, 1 << 30, size=16)
    assert (a != b).any()


def test_labels_create_independent_streams():
    a = make_rng(7, "fleet").integers(0, 1 << 30, size=16)
    b = make_rng(7, "corpus").integers(0, 1 << 30, size=16)
    assert (a != b).any()


def test_labeled_streams_are_stable():
    """FNV label folding must not depend on Python's salted hash()."""
    a = make_rng(3, "stable-label").integers(0, 1 << 30, size=8)
    b = make_rng(3, "stable-label").integers(0, 1 << 30, size=8)
    assert (a == b).all()


def test_negative_or_huge_seed_accepted():
    make_rng(-1)
    make_rng(1 << 80, "big")
