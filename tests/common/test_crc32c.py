"""CRC-32C kernel equivalence: the sliced kernel vs the byte-loop reference.

:func:`repro.common.crc32c.crc32c` dispatches between a byte-at-a-time table
loop and a slice-by-:data:`~repro.common.crc32c._STRIPE` numpy kernel by
input size. Both must compute the identical polynomial division — the golden
wire-format vectors pin the framed/container checksums byte-exactly, so a
divergence here is silent data corruption. These tests pin the known check
value, force both kernels against each other across the dispatch boundary,
and exercise incremental (continued) updates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.crc32c import (
    _STRIPE,
    _VECTOR_MIN_BYTES,
    _update_scalar,
    _update_sliced,
    crc32c,
    masked_crc32c,
    unmask_crc32c,
)

#: The universal CRC-32C check value for the ASCII digits "123456789".
CHECK_VALUE = 0xE3069283


def scalar_crc32c(data: bytes, crc: int = 0) -> int:
    """Reference CRC through the byte loop only, bypassing dispatch."""
    return ~_update_scalar(~crc & 0xFFFFFFFF, data) & 0xFFFFFFFF


def test_known_check_value():
    assert crc32c(b"123456789") == CHECK_VALUE


def test_empty_and_single_byte():
    assert crc32c(b"") == 0
    assert crc32c(b"\x00") == scalar_crc32c(b"\x00")


def test_kernels_agree_across_dispatch_boundary():
    # Every length around the vector threshold and around stripe multiples:
    # both the pure-scalar path, the sliced path, and the mixed tail.
    data = bytes(range(256)) * 5
    lengths = set(range(0, 3 * _STRIPE + 2))
    lengths |= {_VECTOR_MIN_BYTES - 1, _VECTOR_MIN_BYTES, _VECTOR_MIN_BYTES + 1}
    lengths |= {len(data)}
    for n in sorted(lengths):
        assert crc32c(data[:n]) == scalar_crc32c(data[:n]), n


def test_sliced_kernel_directly():
    data = b"the quick brown fox jumps over the lazy dog " * 40
    reg = 0xDEADBEEF
    assert _update_sliced(reg, data) == _update_scalar(reg, data)


def test_incremental_continuation_matches_one_shot():
    data = bytes((i * 37 + 11) & 0xFF for i in range(4096))
    for split in (0, 1, 63, 64, 65, 300, 4095, 4096):
        partial = crc32c(data[:split])
        assert crc32c(data[split:], partial) == crc32c(data)


def test_bytearray_and_memoryview_inputs():
    data = b"abc" * 200
    assert crc32c(bytearray(data)) == crc32c(data)
    assert crc32c(memoryview(data)) == crc32c(data)


def test_mask_roundtrip():
    for data in (b"", b"x", b"snappy framing" * 99):
        assert unmask_crc32c(masked_crc32c(data)) == crc32c(data)


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=1024), st.integers(0, 0xFFFFFFFF))
def test_property_kernels_and_continuation(data, seed_crc):
    one_shot = crc32c(data, seed_crc)
    assert one_shot == scalar_crc32c(data, seed_crc)
    mid = len(data) // 2
    partial = crc32c(data[:mid], seed_crc)
    assert crc32c(data[mid:], partial) == one_shot
