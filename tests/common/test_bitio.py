"""Unit tests for the LSB-first bit reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitio import BitReader, BitWriter
from repro.common.errors import CorruptStreamError


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit_sets_lsb(self):
        writer = BitWriter()
        writer.write(1, 1)
        assert writer.getvalue() == b"\x01"

    def test_bits_fill_lsb_first(self):
        writer = BitWriter()
        writer.write(0b1, 1)
        writer.write(0b11, 2)
        # bit0=1, bits1-2=11 -> 0b00000111
        assert writer.getvalue() == b"\x07"

    def test_multi_byte_value(self):
        writer = BitWriter()
        writer.write(0xABCD, 16)
        assert writer.getvalue() == b"\xcd\xab"

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write(0, 3)
        writer.write(0, 12)
        assert writer.bit_length == 15

    def test_align_to_byte_pads_with_zeros(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.align_to_byte()
        writer.write(0xFF, 8)
        assert writer.getvalue() == b"\x01\xff"

    def test_align_on_boundary_is_noop(self):
        writer = BitWriter()
        writer.write(0xAA, 8)
        writer.align_to_byte()
        assert writer.bit_length == 8

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(0, -1)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_getvalue_does_not_consume_partial_byte(self):
        writer = BitWriter()
        writer.write(1, 1)
        assert writer.getvalue() == b"\x01"
        writer.write(1, 1)
        assert writer.getvalue() == b"\x03"


class TestBitReader:
    def test_read_mirrors_write(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0x5A, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 0b101
        assert reader.read(8) == 0x5A

    def test_peek_does_not_consume(self):
        reader = BitReader(b"\xff")
        assert reader.peek(4) == 0xF
        assert reader.read(8) == 0xFF

    def test_underflow_raises(self):
        reader = BitReader(b"\x01")
        with pytest.raises(CorruptStreamError):
            reader.read(9)

    def test_peek_padded_zero_extends(self):
        reader = BitReader(b"\x03")
        reader.skip(7)
        # one real bit (0) remains; padding supplies the rest as zeros
        assert reader.peek_padded(8) == 0

    def test_skip_advances(self):
        reader = BitReader(b"\xf0")
        reader.skip(4)
        assert reader.read(4) == 0xF

    def test_skip_past_end_raises(self):
        with pytest.raises(CorruptStreamError):
            BitReader(b"").skip(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11

    def test_align_to_byte(self):
        reader = BitReader(b"\x00\xff")
        reader.read(3)
        reader.align_to_byte()
        assert reader.read(8) == 0xFF

    def test_byte_position_requires_alignment(self):
        reader = BitReader(b"\x00\x00")
        reader.read(1)
        with pytest.raises(ValueError):
            reader.byte_position()

    def test_byte_position_when_aligned(self):
        reader = BitReader(b"\x00\x00")
        reader.read(8)
        assert reader.byte_position() == 1

    def test_start_bit_offset(self):
        reader = BitReader(b"\x0f", start_bit=2)
        assert reader.read(2) == 0b11

    def test_bad_start_bit_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", start_bit=9)


@given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)), max_size=60))
def test_roundtrip_arbitrary_field_sequences(fields):
    """Property: any sequence of (value, width) fields round-trips."""
    writer = BitWriter()
    for value, width in fields:
        writer.write(value & ((1 << width) - 1), width)
    reader = BitReader(writer.getvalue())
    for value, width in fields:
        assert reader.read(width) == value & ((1 << width) - 1)


@given(st.binary(max_size=64))
def test_reader_reproduces_bytes(data):
    """Property: reading 8-bit fields reproduces the byte string."""
    reader = BitReader(data)
    assert bytes(reader.read(8) for _ in range(len(data))) == data


class TestBitReaderExtend:
    """extend(): resume a reader across streaming feeds."""

    def test_extend_resumes_at_same_bit_position(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0xABCD, 16)
        stream = writer.getvalue()
        reader = BitReader(stream[:1])
        assert reader.read(3) == 0b101
        with pytest.raises(CorruptStreamError):
            reader.read(16)  # underflow: only 5 bits left
        assert reader.bit_position == 3  # failed read consumed nothing
        reader.extend(stream[1:])
        assert reader.read(16) == 0xABCD

    def test_extend_empty_is_noop(self):
        reader = BitReader(b"\xff")
        reader.read(4)
        reader.extend(b"")
        assert reader.bits_remaining == 4
        assert reader.read(4) == 0xF

    def test_extend_after_exhaustion(self):
        reader = BitReader(b"\x0f")
        assert reader.read(8) == 0x0F
        assert reader.bits_remaining == 0
        reader.extend(b"\xf0")
        assert reader.bits_remaining == 8
        assert reader.read(8) == 0xF0

    @given(st.binary(min_size=1, max_size=64), st.integers(1, 63))
    def test_chunked_extend_equals_whole_buffer(self, data, split):
        split = min(split, len(data))
        whole = BitReader(data)
        chunked = BitReader(data[:split])
        chunked.extend(data[split:])
        for _ in range(len(data)):
            assert chunked.read(8) == whole.read(8)
