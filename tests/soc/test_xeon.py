"""Unit tests for the lzbench-like Xeon software baseline (§6.1)."""

import pytest

from repro.algorithms.base import Operation
from repro.core import calibration as cal
from repro.soc.xeon import XeonBaseline


@pytest.fixture(scope="module")
def xeon():
    return XeonBaseline()


class TestAnchors:
    @pytest.mark.parametrize("key", sorted(cal.XEON_GBPS, key=str))
    def test_cycles_per_byte_match_published_throughput(self, xeon, key):
        algo, op = key
        per_byte = xeon.cycles_per_byte(algo, op)  # at the reference ratio
        implied_gbps = cal.XEON_CLOCK_HZ / per_byte / cal.GB_PER_SECOND
        assert implied_gbps == pytest.approx(cal.XEON_GBPS[key], rel=1e-6)

    def test_unsupported_algorithm_raises(self, xeon):
        with pytest.raises(KeyError, match="Snappy and ZStd"):
            xeon.cycles_per_byte("flate", Operation.COMPRESS)


class TestDataDependence:
    def test_compressible_data_decodes_faster(self, xeon):
        fast = xeon.cycles_per_byte("snappy", Operation.DECOMPRESS, ratio=4.0)
        slow = xeon.cycles_per_byte("snappy", Operation.DECOMPRESS, ratio=1.1)
        assert fast < slow

    def test_compressible_data_compresses_faster(self, xeon):
        fast = xeon.cycles_per_byte("zstd", Operation.COMPRESS, ratio=4.0)
        slow = xeon.cycles_per_byte("zstd", Operation.COMPRESS, ratio=1.1)
        assert fast < slow

    def test_zstd_level_scales_compression_cost(self, xeon):
        cheap = xeon.cycles_per_byte("zstd", Operation.COMPRESS, level=1)
        pricey = xeon.cycles_per_byte("zstd", Operation.COMPRESS, level=19)
        assert pricey > 2 * cheap

    def test_level_ignored_for_decompression(self, xeon):
        assert xeon.cycles_per_byte("zstd", Operation.DECOMPRESS, level=1) == xeon.cycles_per_byte(
            "zstd", Operation.DECOMPRESS, level=19
        )


class TestSuiteAggregates:
    def test_suite_throughput_near_anchor(self, xeon, bench):
        """§6.1 aggregate throughput should land near the published GB/s
        (data-dependence factors perturb it modestly)."""
        for (algo, op), anchor in cal.XEON_GBPS.items():
            suite = bench.suite(algo, op)
            measured = xeon.suite_throughput_gbps(suite)
            assert measured == pytest.approx(anchor, rel=0.35), (algo, op)

    def test_call_time_positive_and_monotone_in_size(self, xeon):
        small = xeon.call_seconds("snappy", Operation.COMPRESS, 1000)
        large = xeon.call_seconds("snappy", Operation.COMPRESS, 100_000)
        assert 0 < small < large
