"""Unit tests for the memory-system model."""

import pytest

from repro.soc.memory import MemorySystem
from repro.soc.placement import Placement


class TestStreaming:
    def test_zero_bytes_is_free(self):
        memory = MemorySystem.for_placement(Placement.ROCC)
        assert memory.streaming_cycles(0, 0) == 0.0

    def test_linear_in_bytes(self):
        memory = MemorySystem.for_placement(Placement.ROCC)
        assert memory.streaming_cycles(2000, 0) == pytest.approx(
            2 * memory.streaming_cycles(1000, 0)
        )

    def test_input_and_output_share_the_port(self):
        memory = MemorySystem.for_placement(Placement.ROCC)
        combined = memory.streaming_cycles(1000, 1000)
        assert combined == pytest.approx(memory.streaming_cycles(2000, 0))

    def test_pcie_much_slower(self):
        near = MemorySystem.for_placement(Placement.ROCC)
        far = MemorySystem.for_placement(Placement.PCIE_NO_CACHE)
        assert far.streaming_cycles(10_000, 0) > 5 * near.streaming_cycles(10_000, 0)


class TestBlockingReads:
    def test_linear_in_requests(self):
        memory = MemorySystem.for_placement(Placement.CHIPLET)
        assert memory.blocking_read_cycles(10) == pytest.approx(
            10 * memory.blocking_read_cycles(1)
        )

    def test_latency_ordering(self):
        per_request = {
            p: MemorySystem.for_placement(p).blocking_read_cycles(1)
            for p in (Placement.ROCC, Placement.CHIPLET, Placement.PCIE_NO_CACHE)
        }
        assert (
            per_request[Placement.ROCC]
            < per_request[Placement.CHIPLET]
            < per_request[Placement.PCIE_NO_CACHE]
        )

    def test_card_cache_is_cheap_for_pcie_local(self):
        local = MemorySystem.for_placement(Placement.PCIE_LOCAL_CACHE)
        remote = MemorySystem.for_placement(Placement.PCIE_NO_CACHE)
        assert local.blocking_read_cycles(1) < remote.blocking_read_cycles(1) / 5
