"""Unit tests for the RoCC custom-instruction interface model (§5)."""

import pytest

from repro.common.errors import CorruptStreamError
from repro.soc.rocc import (
    CUSTOM_OPCODES,
    CdpuFunct,
    RoccFrontend,
    RoccInstruction,
    call_command_sequence,
    cdpu_command,
)


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        original = cdpu_command(CdpuFunct.SET_SOURCE, 0x1000, 4096)
        decoded = RoccInstruction.decode(original.encode(), 0x1000, 4096)
        assert decoded.funct == int(CdpuFunct.SET_SOURCE)
        assert decoded.opcode == CUSTOM_OPCODES[0]
        assert decoded.xs1 and decoded.xs2
        assert decoded.rs1_value == 0x1000

    def test_opcode_field_is_low_7_bits(self):
        word = cdpu_command(CdpuFunct.START, 0, 0).encode()
        assert word & 0x7F == CUSTOM_OPCODES[0]

    def test_funct_field_is_top_7_bits(self):
        word = cdpu_command(CdpuFunct.POLL).encode()
        assert (word >> 25) & 0x7F == int(CdpuFunct.POLL)

    def test_poll_sets_xd(self):
        assert cdpu_command(CdpuFunct.POLL).xd
        assert not cdpu_command(CdpuFunct.START).xd

    def test_non_custom_opcode_rejected(self):
        with pytest.raises(CorruptStreamError):
            RoccInstruction.decode(0b0110011)  # plain OP opcode

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            RoccInstruction(
                funct=200, rd=0, rs1=0, rs2=0, xd=False, xs1=False, xs2=False,
                opcode=CUSTOM_OPCODES[0],
            ).encode()

    def test_all_custom_opcodes_decode(self):
        for custom in CUSTOM_OPCODES:
            word = cdpu_command(CdpuFunct.START, custom=custom).encode()
            assert RoccInstruction.decode(word).opcode == CUSTOM_OPCODES[custom]


class TestCommandSequence:
    def test_sequence_is_five_instructions(self):
        """'Within a few cycles': the per-call command path is 5 instructions."""
        sequence = call_command_sequence(0x1000, 100, 0x2000, 200, operation_code=0)
        assert len(sequence) == 5
        assert RoccFrontend().dispatch_instruction_count == 5

    def test_frontend_accepts_valid_sequence(self):
        sequence = call_command_sequence(
            0x1000, 100, 0x2000, 200, operation_code=1, window_size=65536, algorithm_id=1
        )
        frontend = RoccFrontend().run_sequence(sequence)
        assert frontend.src == (0x1000, 100)
        assert frontend.dst == (0x2000, 200)
        assert frontend.window_size == 65536
        assert frontend.started_operation == 1

    def test_start_without_source_rejected(self):
        frontend = RoccFrontend()
        with pytest.raises(CorruptStreamError):
            frontend.execute(cdpu_command(CdpuFunct.START, 0))

    def test_poll_without_start_rejected(self):
        with pytest.raises(CorruptStreamError):
            RoccFrontend().execute(cdpu_command(CdpuFunct.POLL))

    def test_zero_length_source_rejected(self):
        with pytest.raises(CorruptStreamError):
            RoccFrontend().execute(cdpu_command(CdpuFunct.SET_SOURCE, 0x1000, 0))

    def test_bad_operation_code_rejected(self):
        frontend = RoccFrontend()
        frontend.execute(cdpu_command(CdpuFunct.SET_SOURCE, 0x1000, 10))
        frontend.execute(cdpu_command(CdpuFunct.SET_DESTINATION, 0x2000, 20))
        with pytest.raises(CorruptStreamError):
            frontend.execute(cdpu_command(CdpuFunct.START, 7))
