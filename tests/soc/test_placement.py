"""Unit tests for the placement latency/bandwidth models (§3.5, §5.8)."""

import pytest

from repro.core import calibration as cal
from repro.soc.placement import ALL_PLACEMENTS, Placement, placement_model


class TestLatencyInjection:
    def test_rocc_has_no_injection(self):
        model = placement_model(Placement.ROCC)
        assert model.edge_extra_cycles == 0
        assert model.edge_request_latency == cal.L2_LATENCY_CYCLES

    def test_chiplet_injects_25ns(self):
        model = placement_model(Placement.CHIPLET)
        assert model.edge_extra_cycles == pytest.approx(50.0)  # 25 ns at 2 GHz

    def test_pcie_injects_200ns(self):
        for placement in (Placement.PCIE_LOCAL_CACHE, Placement.PCIE_NO_CACHE):
            assert placement_model(placement).edge_extra_cycles == pytest.approx(400.0)

    def test_pcie_local_cache_serves_intermediates_locally(self):
        """§5.8: PCIeLocalCache injects nothing on intermediate accesses."""
        local = placement_model(Placement.PCIE_LOCAL_CACHE)
        remote = placement_model(Placement.PCIE_NO_CACHE)
        assert local.intermediate_request_latency == cal.CARD_CACHE_LATENCY_CYCLES
        assert remote.intermediate_request_latency > 400.0

    def test_chiplet_intermediates_cross_the_link(self):
        model = placement_model(Placement.CHIPLET)
        assert model.intermediate_request_latency == pytest.approx(
            cal.L2_LATENCY_CYCLES + 50.0
        )


class TestStreamingBandwidth:
    def test_ordering(self):
        """Near-core streams fastest; PCIe is latency-starved."""
        bw = {p: placement_model(p).streaming_bytes_per_cycle() for p in ALL_PLACEMENTS}
        assert bw[Placement.ROCC] > bw[Placement.CHIPLET] > bw[Placement.PCIE_NO_CACHE]

    def test_port_cap(self):
        assert placement_model(Placement.ROCC).streaming_bytes_per_cycle() <= cal.PORT_BYTES_PER_CYCLE

    def test_pcie_bandwidth_latency_product(self):
        model = placement_model(Placement.PCIE_NO_CACHE)
        expected = cal.BEAT_BYTES * model.outstanding_requests / model.edge_request_latency
        assert model.streaming_bytes_per_cycle() == pytest.approx(expected)


class TestPerCallOverhead:
    def test_rocc_is_cheap(self):
        assert placement_model(Placement.ROCC).per_call_overhead_cycles() == pytest.approx(
            cal.ROCC_CALL_OVERHEAD_CYCLES
        )

    def test_pcie_pays_round_trips(self):
        overhead = placement_model(Placement.PCIE_NO_CACHE).per_call_overhead_cycles()
        assert overhead >= cal.PCIE_CALL_ROUND_TRIPS * 400.0

    def test_monotone_with_distance(self):
        values = [placement_model(p).per_call_overhead_cycles() for p in ALL_PLACEMENTS]
        rocc, chiplet, pcie_lc, pcie_nc = values
        assert rocc < chiplet < pcie_lc == pcie_nc
