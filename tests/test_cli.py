"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCompressDecompress:
    @pytest.mark.parametrize("algorithm", ["snappy", "zstd", "lzo"])
    def test_roundtrip_via_files(self, tmp_path, capsys, algorithm):
        source = tmp_path / "in.bin"
        packed = tmp_path / "out.cmp"
        restored = tmp_path / "back.bin"
        payload = b"cli roundtrip payload " * 500
        source.write_bytes(payload)

        assert main(["compress", str(source), str(packed), "-a", algorithm]) == 0
        assert packed.stat().st_size < len(payload)
        assert main(["decompress", str(packed), str(restored), "-a", algorithm]) == 0
        assert restored.read_bytes() == payload

    def test_level_and_window_flags(self, tmp_path):
        source = tmp_path / "in.bin"
        source.write_bytes(b"windowed " * 1000)
        out = tmp_path / "out.z"
        code = main(
            ["compress", str(source), str(out), "-a", "zstd", "-l", "9", "--window-log", "16"]
        )
        assert code == 0
        back = tmp_path / "back.bin"
        assert main(["decompress", str(out), str(back), "-a", "zstd"]) == 0
        assert back.read_bytes() == source.read_bytes()

    def test_corrupt_input_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.cmp"
        bad.write_bytes(b"\xff\xff\xffnot a stream")
        out = tmp_path / "out.bin"
        assert main(["decompress", str(bad), str(out), "-a", "zstd"]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_ratio_reported_on_stderr(self, tmp_path, capsys):
        source = tmp_path / "in.bin"
        source.write_bytes(b"report " * 400)
        assert main(["compress", str(source), str(tmp_path / "o"), "-a", "snappy"]) == 0
        assert "x)" in capsys.readouterr().err


class TestFleetCommand:
    def test_summary_prints_key_statistics(self, capsys):
        assert main(["fleet", "--calls", "20000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "decompression cycle share" in out
        assert "ZStd bytes at level" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["compress", "a", "b", "-a", "lz4"])

    def test_dse_requires_valid_figure(self):
        with pytest.raises(SystemExit):
            main(["dse", "fig99"])


class TestDseCommand:
    def test_fig11_table_printed(self, capsys, bench):
        # `bench` fixture ensures the disk cache is warm, keeping this fast.
        assert main(["dse", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out and "RoCC" in out
