"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCompressDecompress:
    @pytest.mark.parametrize("algorithm", ["snappy", "zstd", "lzo"])
    def test_roundtrip_via_files(self, tmp_path, capsys, algorithm):
        source = tmp_path / "in.bin"
        packed = tmp_path / "out.cmp"
        restored = tmp_path / "back.bin"
        payload = b"cli roundtrip payload " * 500
        source.write_bytes(payload)

        assert main(["compress", str(source), str(packed), "-a", algorithm]) == 0
        assert packed.stat().st_size < len(payload)
        assert main(["decompress", str(packed), str(restored), "-a", algorithm]) == 0
        assert restored.read_bytes() == payload

    def test_level_and_window_flags(self, tmp_path):
        source = tmp_path / "in.bin"
        source.write_bytes(b"windowed " * 1000)
        out = tmp_path / "out.z"
        code = main(
            ["compress", str(source), str(out), "-a", "zstd", "-l", "9", "--window-log", "16"]
        )
        assert code == 0
        back = tmp_path / "back.bin"
        assert main(["decompress", str(out), str(back), "-a", "zstd"]) == 0
        assert back.read_bytes() == source.read_bytes()

    def test_corrupt_input_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.cmp"
        bad.write_bytes(b"\xff\xff\xffnot a stream")
        out = tmp_path / "out.bin"
        assert main(["decompress", str(bad), str(out), "-a", "zstd"]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_ratio_reported_on_stderr(self, tmp_path, capsys):
        source = tmp_path / "in.bin"
        source.write_bytes(b"report " * 400)
        assert main(["compress", str(source), str(tmp_path / "o"), "-a", "snappy"]) == 0
        assert "x)" in capsys.readouterr().err


class TestStreamCommand:
    """``repro stream``: stdin -> stdout through an incremental context."""

    PAYLOAD = (b"stream me through the incremental context, chunk by chunk. " * 300) + bytes(
        range(256)
    )

    def _run(self, monkeypatch, capsysbinary, argv, stdin: bytes):
        import io
        import sys as _sys
        import types

        monkeypatch.setattr(
            _sys, "stdin", types.SimpleNamespace(buffer=io.BytesIO(stdin))
        )
        code = main(argv)
        captured = capsysbinary.readouterr()
        return code, captured.out, captured.err

    @pytest.mark.parametrize("codec", ["snappy", "zstd", "snappy-framed"])
    def test_stream_roundtrip(self, monkeypatch, capsysbinary, codec):
        code, packed, err = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "compress", "--codec", codec, "--chunk-size", "1024"],
            self.PAYLOAD,
        )
        assert code == 0
        assert b"peak buffered" in err
        code, restored, err = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "decompress", "--codec", codec, "--chunk-size", "777"],
            packed,
        )
        assert code == 0
        assert restored == self.PAYLOAD

    def test_stream_output_matches_one_shot_compress(self, monkeypatch, capsysbinary):
        from repro.algorithms.registry import get_codec

        code, packed, _ = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "compress", "-a", "lzo", "--chunk-size", "100"],
            self.PAYLOAD,
        )
        assert code == 0
        assert packed == get_codec("lzo").compress(self.PAYLOAD)

    def test_corrupt_stream_exits_nonzero(self, monkeypatch, capsysbinary):
        code, out, err = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "decompress", "--codec", "zstd"],
            b"definitely not a zstd frame",
        )
        assert code == 1
        assert b"error" in err

    def test_truncated_stream_exits_nonzero(self, monkeypatch, capsysbinary):
        from repro.algorithms.registry import get_codec

        frame = get_codec("zstd").compress(self.PAYLOAD)
        code, out, err = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "decompress", "--codec", "zstd"],
            frame[: len(frame) // 2],
        )
        assert code == 1

    def test_bad_chunk_size_rejected(self, monkeypatch, capsysbinary):
        code, _, err = self._run(
            monkeypatch,
            capsysbinary,
            ["stream", "compress", "--chunk-size", "0"],
            b"x",
        )
        assert code == 2
        assert b"chunk-size" in err

    def test_trace_flag_covers_stream(self, monkeypatch, capsysbinary, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        code, _, _ = self._run(
            monkeypatch,
            capsysbinary,
            ["--trace", str(out_path), "stream", "compress", "-a", "snappy"],
            self.PAYLOAD,
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        names = {e.get("name") for e in payload["traceEvents"]}
        assert any(
            n and n.startswith("codec.snappy.stream.compress") for n in names
        )


class TestFleetCommand:
    def test_summary_prints_key_statistics(self, capsys):
        assert main(["fleet", "--calls", "20000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "decompression cycle share" in out
        assert "ZStd bytes at level" in out


class TestServeCommand:
    """``repro serve``: the open-loop service load runner."""

    BURST = [
        "serve",
        "--calls",
        "12",
        "--codecs",
        "snappy",
        "--time-scale",
        "0",
        "--queue-depth",
        "4096",
        "--max-payload",
        "512",
    ]

    def test_burst_json_report(self, capsys):
        import json

        assert main(self.BURST + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "service"
        assert payload["offered"]["calls"] == 12
        assert payload["counts"]["completed"] == 12
        assert payload["counts"]["failed"] == 0
        assert "sim_validation" not in payload

    def test_human_report_with_validation(self, capsys):
        argv = self.BURST + ["--workers", "1", "--no-batch", "--validate"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "service load: 12 calls offered" in out
        assert "sim validation" in out

    def test_unknown_codec_exits_nonzero(self, capsys):
        assert main(["serve", "--calls", "2", "--codecs", "lz4"]) == 1
        assert "unknown codec" in capsys.readouterr().err

    def test_pacing_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(self.BURST + ["--target-utilization", "0.5"])


class TestGraphCommand:
    def test_list_prints_presets_and_pipelines(self, capsys):
        assert main(["graph", "list"]) == 0
        out = capsys.readouterr().out
        assert "graph-delta-fse" in out
        assert "delta(1) > fse" in out
        assert "transpose(8) > delta(1) > fse" in out

    def test_describe_preset(self, capsys):
        assert main(["graph", "describe", "graph-lz-huff"]) == 0
        assert "lz77 > huffman" in capsys.readouterr().out

    def test_describe_frame_file(self, tmp_path, capsys):
        source = tmp_path / "in.bin"
        source.write_bytes(b"describe this frame please " * 200)
        frame = tmp_path / "out.grph"
        assert main(
            ["compress", str(source), str(frame), "-a", "graph-delta-fse"]
        ) == 0
        assert main(["graph", "describe", str(frame)]) == 0
        out = capsys.readouterr().out
        assert "delta(1) > fse" in out
        assert str(len(source.read_bytes())) in out
        assert "raw escape     : no" in out

    def test_describe_frame_reports_raw_escape(self, tmp_path, capsys):
        import hashlib

        source = tmp_path / "in.bin"
        noise = b"".join(
            hashlib.sha256(i.to_bytes(2, "big")).digest() for i in range(128)
        )
        source.write_bytes(noise)
        frame = tmp_path / "out.grph"
        assert main(
            ["compress", str(source), str(frame), "-a", "graph-float-fse"]
        ) == 0
        assert main(["graph", "describe", str(frame)]) == 0
        out = capsys.readouterr().out
        assert "pipeline       : raw" in out
        assert "raw escape     : yes" in out

    def test_roundtrip_reports_ratio(self, tmp_path, capsys):
        source = tmp_path / "in.bin"
        source.write_bytes(b"graph roundtrip payload " * 300)
        assert main(["graph", "roundtrip", "graph-token-fse", str(source)]) == 0
        out = capsys.readouterr().out
        assert "round trip OK" in out

    def test_roundtrip_unknown_preset_exits_nonzero(self, tmp_path, capsys):
        source = tmp_path / "in.bin"
        source.write_bytes(b"x")
        assert main(["graph", "roundtrip", "graph-nope", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        assert main(
            ["graph", "sweep", "--size", "2048",
             "--out", str(out_path)]
        ) == 0
        import json

        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "graph_dse"
        assert "float_timeseries" in payload["workloads"]
        assert "best graph" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["compress", "a", "b", "-a", "lz4"])

    def test_dse_requires_valid_figure(self):
        with pytest.raises(SystemExit):
            main(["dse", "fig99"])


class TestDseCommand:
    def test_fig11_table_printed(self, capsys, bench):
        # `bench` fixture ensures the disk cache is warm, keeping this fast.
        assert main(["dse", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out and "RoCC" in out
