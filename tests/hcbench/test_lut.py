"""Unit tests for the ratio-indexed chunk lookup tables (§4)."""

import pytest

from repro.corpus import build_corpus, chunk_corpus
from repro.hcbench.lut import (
    LutKey,
    RatedChunk,
    RatioLut,
    build_luts,
    default_lut_keys,
    lut_for_call,
)


@pytest.fixture(scope="module")
def small_luts():
    corpus = build_corpus(0, 8192)
    chunks = chunk_corpus(corpus, 1024)
    return build_luts(chunks, [LutKey("snappy"), LutKey("zstd", level=3, window_size=1 << 16)])


class TestBuild:
    def test_all_chunks_rated(self, small_luts):
        sizes = {len(lut) for lut in small_luts.values()}
        assert len(sizes) == 1  # every config rated the same pool

    def test_ratio_range_spans_incompressible_to_structured(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        assert lut.min_ratio < 1.1
        assert lut.max_ratio > 3.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            RatioLut(LutKey("snappy"), [])

    def test_default_keys_cover_snappy_and_zstd(self):
        keys = default_lut_keys()
        assert {k.algorithm for k in keys} == {"snappy", "zstd"}
        assert len([k for k in keys if k.algorithm == "zstd"]) >= 2


class TestNearest:
    def test_exact_hit(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        target = lut.nearest(2.0).ratio
        assert lut.nearest(target).ratio == target

    def test_clamps_to_extremes(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        assert lut.nearest(0.01).ratio == lut.min_ratio
        assert lut.nearest(1000.0).ratio == lut.max_ratio

    def test_exclusion_avoids_reuse(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        used = set()
        picks = []
        for _ in range(10):
            rated = lut.nearest(2.0, exclude=used)
            picks.append(rated.chunk.chunk_id)
            used.add(rated.chunk.chunk_id)
        assert len(set(picks)) == 10

    def test_exclusion_of_everything_falls_back(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        everything = {r.chunk.chunk_id for r in lut._rated}
        rated = lut.nearest(2.0, exclude=everything)
        assert rated is not None

    def test_skip_shifts_pick(self, small_luts):
        lut = small_luts[LutKey("snappy")]
        base = lut.nearest(2.0, skip=0)
        shifted = lut.nearest(2.0, skip=3)
        assert shifted.ratio >= base.ratio


class TestLutForCall:
    def test_level_matching_picks_closest(self, small_luts):
        chosen = lut_for_call(small_luts, "zstd", level=2)
        assert chosen.key.level == 3

    def test_levelless_algorithms(self, small_luts):
        assert lut_for_call(small_luts, "snappy", None).key.algorithm == "snappy"

    def test_unknown_algorithm_raises(self, small_luts):
        with pytest.raises(KeyError):
            lut_for_call(small_luts, "brotli", 1)
