"""HyperCompressBench validation against fleet statistics (§4.1, Figs 6-7)."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.hcbench.validation import (
    OPEN_SOURCE_FILE_SIZES,
    median_bin_gap_vs_fleet,
    opensource_call_size_cdf,
    opensource_median_bin,
    suite_call_size_cdf,
    validate_call_sizes,
    validate_ratios,
)


class TestFigure7:
    def test_call_size_cdfs_match_fleet(self, bench, fleet_profile):
        """Figure 7: suite distributions 'line up very well' with Figure 3."""
        deviations = validate_call_sizes(bench, fleet_profile)
        for key, ks in deviations.items():
            # 48 byte-weighted draws per suite: KS ~ 1.36/sqrt(48) ~ 0.20.
            assert ks < 0.25, (key, ks)

    def test_suite_cdf_bins_are_fleet_scale(self, bench):
        suite = bench.suite("snappy", Operation.COMPRESS)
        bins, cdf = suite_call_size_cdf(suite, bench.config.size_scale)
        assert bins[0] == 10 and bins[-1] == 26
        assert cdf[-1] == pytest.approx(1.0)

    def test_zstd_decomp_suite_biased_to_large_calls(self, bench, fleet_profile):
        """The four suites keep their distinct shapes (Fig. 7a-7d)."""
        snappy_d = bench.suite("snappy", Operation.DECOMPRESS)
        zstd_d = bench.suite("zstd", Operation.DECOMPRESS)
        _, s_cdf = suite_call_size_cdf(snappy_d, bench.config.size_scale)
        _, z_cdf = suite_call_size_cdf(zstd_d, bench.config.size_scale)
        # At 256 KiB (bin 18) Snappy decompression has far more of its mass.
        assert s_cdf[8] > z_cdf[8] + 0.2


class TestRatioValidation:
    def test_assembly_controller_accuracy(self, bench, fleet_profile):
        """Achieved aggregate ratio tracks the sampled targets within ~20%."""
        for algo, (achieved, implied, _fleet) in validate_ratios(bench, fleet_profile).items():
            assert achieved == pytest.approx(implied, rel=0.20), algo

    def test_fleet_ballpark(self, bench, fleet_profile):
        """§4.1 reports 5-10% at full scale; the scaled suite stays within
        ~40% of the fleet aggregate (sampling variance of 48 draws)."""
        for algo, (achieved, _implied, fleet) in validate_ratios(bench, fleet_profile).items():
            assert achieved == pytest.approx(fleet, rel=0.4), algo


class TestFigure6:
    def test_corpora_recorded(self):
        assert set(OPEN_SOURCE_FILE_SIZES) == {"silesia", "canterbury", "calgary", "snappyfiles"}
        assert len(OPEN_SOURCE_FILE_SIZES["silesia"]) == 12

    def test_opensource_cdf_monotone(self):
        bins, cdf = opensource_call_size_cdf()
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_median_gap_is_about_256x(self, fleet_profile):
        """§3.7: open-source median call size ~256x the fleet median."""
        gap = median_bin_gap_vs_fleet(fleet_profile)
        assert 7 <= gap <= 9  # 128x .. 512x; 8 bins = 256x

    def test_opensource_median_dominated_by_silesia(self):
        # Byte-weighted: the multi-MB Silesia files dominate the median.
        assert opensource_median_bin() >= 24  # >= 8 MiB
