"""Unit tests for the HyperCompressBench generator pipeline (§4)."""

import pytest

from repro.algorithms.base import Operation
from repro.hcbench.generator import SUITE_PAIRS, GeneratorConfig, HcBenchGenerator


@pytest.fixture(scope="module")
def tiny_generator():
    # A deliberately small configuration so generation stays fast in tests.
    return HcBenchGenerator(
        GeneratorConfig(seed=5, files_per_suite=6, corpus_file_size=16 * 1024)
    )


class TestConfig:
    def test_size_scale_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GeneratorConfig(size_scale=3)

    def test_positive_file_count(self):
        with pytest.raises(ValueError):
            GeneratorConfig(files_per_suite=0)

    def test_four_suite_pairs(self):
        assert set(SUITE_PAIRS) == {
            ("snappy", Operation.COMPRESS),
            ("zstd", Operation.COMPRESS),
            ("snappy", Operation.DECOMPRESS),
            ("zstd", Operation.DECOMPRESS),
        }


class TestGeneration:
    def test_suite_has_requested_file_count(self, tiny_generator):
        files = tiny_generator.generate_suite("snappy", Operation.COMPRESS)
        assert len(files) == 6

    def test_files_carry_usage_parameters(self, tiny_generator):
        files = tiny_generator.generate_suite("zstd", Operation.COMPRESS)
        for file in files:
            assert file.algorithm == "zstd"
            assert file.level is not None
            assert file.window_size is not None and file.window_size >= 1 << 15
            assert file.target_ratio > 1.0

    def test_snappy_files_have_no_level(self, tiny_generator):
        files = tiny_generator.generate_suite("snappy", Operation.DECOMPRESS)
        assert all(f.level is None for f in files)

    def test_min_file_size_respected(self, tiny_generator):
        for algo, op in SUITE_PAIRS:
            files = tiny_generator.generate_suite(algo, op)
            assert all(len(f.data) >= tiny_generator.config.min_file_bytes for f in files)

    def test_deterministic_given_seed(self):
        config = GeneratorConfig(seed=9, files_per_suite=3, corpus_file_size=8 * 1024)
        a = HcBenchGenerator(config).generate_suite("snappy", Operation.COMPRESS)
        b = HcBenchGenerator(config).generate_suite("snappy", Operation.COMPRESS)
        assert [f.data for f in a] == [f.data for f in b]

    def test_unknown_algorithm_rejected(self, tiny_generator):
        with pytest.raises(ValueError):
            tiny_generator.generate_suite("lz4", Operation.COMPRESS)

    def test_file_names_unique_across_suites(self, tiny_generator):
        everything = tiny_generator.generate_all()
        names = [f.name for files in everything.values() for f in files]
        assert len(names) == len(set(names))

    def test_assembled_files_are_not_pathological_repeats(self, tiny_generator):
        """§4: random shuffles guard against pathological sequences; an
        assembled file must not be one chunk repeated verbatim."""
        from repro.algorithms.snappy import SnappyCodec

        files = tiny_generator.generate_suite("snappy", Operation.COMPRESS)
        big = max(files, key=len)
        if len(big.data) >= 4096:
            ratio = len(big.data) / len(SnappyCodec().compress(big.data))
            assert ratio < 50

    def test_achieved_ratio_tracks_target_for_large_files(self, tiny_generator):
        from repro.algorithms.snappy import SnappyCodec

        codec = SnappyCodec()
        files = [
            f
            for f in tiny_generator.generate_suite("snappy", Operation.COMPRESS)
            if len(f.data) >= 16384
        ]
        for file in files:
            achieved = len(file.data) / len(codec.compress(file.data))
            assert achieved == pytest.approx(file.target_ratio, rel=0.5)
