"""Unit tests for the suite container and benchmark caching."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.hcbench import default_benchmark
from repro.hcbench.suite import GENERATOR_VERSION


class TestBenchmarkStructure:
    def test_four_suites(self, bench):
        assert len(bench.suites) == 4
        assert bench.total_files == sum(len(s) for s in bench.suites.values())

    def test_suite_lookup(self, bench):
        suite = bench.suite("snappy", Operation.COMPRESS)
        assert suite.algorithm == "snappy"
        assert suite.operation is Operation.COMPRESS

    def test_unknown_suite_raises(self, bench):
        with pytest.raises(KeyError, match="available"):
            bench.suite("brotli", Operation.COMPRESS)

    def test_total_bytes_positive(self, bench):
        for suite in bench.suites.values():
            assert suite.total_uncompressed_bytes > 10_000


class TestCompressedForms:
    def test_cached_and_stable(self, bench):
        suite = bench.suite("snappy", Operation.DECOMPRESS)
        file = suite.files[0]
        first = suite.compressed_form(file)
        assert suite.compressed_form(file) is first

    def test_decompresses_back(self, bench):
        from repro.algorithms.registry import get_codec

        suite = bench.suite("zstd", Operation.DECOMPRESS)
        file = suite.files[0]
        codec = get_codec("zstd")
        assert codec.decompress(suite.compressed_form(file)) == file.data

    def test_software_ratio_above_one(self, bench):
        for suite in bench.suites.values():
            assert suite.software_compression_ratio() > 1.0


class TestCallSizeCdf:
    def test_monotone_complete(self, bench):
        suite = bench.suite("snappy", Operation.COMPRESS)
        cdf = suite.call_size_cdf(list(range(4, 21)))
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_weighting_modes(self, bench):
        suite = bench.suite("zstd", Operation.DECOMPRESS)
        bins = list(range(4, 21))
        by_file = suite.call_size_cdf(bins, weighting="file")
        by_bytes = suite.call_size_cdf(bins, weighting="bytes")
        # Byte weighting shifts mass toward larger bins.
        assert by_bytes[len(bins) // 2] <= by_file[len(bins) // 2] + 1e-9

    def test_bad_weighting_rejected(self, bench):
        suite = bench.suite("snappy", Operation.COMPRESS)
        with pytest.raises(ValueError):
            suite.call_size_cdf([10, 11], weighting="calls")


class TestDiskCache:
    def test_memoized_instance(self, bench):
        assert default_benchmark() is bench

    def test_cache_file_exists(self, bench):
        import os
        from pathlib import Path

        root = os.environ.get("REPRO_CACHE_DIR")
        cache_dir = Path(root) if root else Path.home() / ".cache" / "repro_cdpu"
        expected = cache_dir / f"hcbench-v{GENERATOR_VERSION}-s0-f48.pkl"
        assert expected.exists()
