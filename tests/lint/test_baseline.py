"""Baseline semantics: partition, round-trip, justification carry-over."""

import json

import pytest

from repro.lint import Severity, load_baseline, write_baseline
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding


def make_finding(rule="R001", path="src/repro/x.py", line=1, snippet="import random"):
    return Finding(
        rule=rule,
        path=path,
        line=line,
        col=0,
        severity=Severity.ERROR,
        message="m",
        snippet=snippet,
    )


class TestPartition:
    def test_grandfathered_finding_absorbed(self):
        baseline = Baseline(
            [BaselineEntry("R001", "src/repro/x.py", "import random", "legacy")]
        )
        new, grandfathered, stale = baseline.partition([make_finding()])
        assert new == [] and len(grandfathered) == 1 and stale == []

    def test_line_drift_does_not_invalidate(self):
        baseline = Baseline(
            [BaselineEntry("R001", "src/repro/x.py", "import random", "legacy")]
        )
        new, grandfathered, _ = baseline.partition([make_finding(line=500)])
        assert new == [] and len(grandfathered) == 1

    def test_second_copy_of_pattern_surfaces_as_new(self):
        baseline = Baseline(
            [BaselineEntry("R001", "src/repro/x.py", "import random", "legacy")]
        )
        new, grandfathered, _ = baseline.partition(
            [make_finding(line=1), make_finding(line=2)]
        )
        assert len(new) == 1 and len(grandfathered) == 1

    def test_fixed_finding_reports_stale_entry(self):
        baseline = Baseline(
            [BaselineEntry("R001", "src/repro/x.py", "import random", "legacy")]
        )
        new, grandfathered, stale = baseline.partition([])
        assert new == [] and grandfathered == [] and len(stale) == 1


class TestFileRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([make_finding()], path, justification="seed-era sampler")
        loaded = load_baseline(path)
        assert len(loaded.entries) == 1
        entry = loaded.entries[0]
        assert entry.key == ("R001", "src/repro/x.py", "import random")
        assert entry.justification == "seed-era sampler"

    def test_new_entry_without_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        with pytest.raises(ValueError, match="no carried justification"):
            write_baseline([make_finding()], path)
        assert not path.exists()

    def test_placeholder_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        for placeholder in ("TODO: justify or fix", "   ", "fixme later"):
            with pytest.raises(ValueError):
                write_baseline([make_finding()], path, justification=placeholder)
        assert not path.exists()

    def test_justifications_carried_over(self, tmp_path):
        path = tmp_path / "baseline.json"
        previous = write_baseline(
            [make_finding()], path, justification="because history"
        )
        write_baseline([make_finding(line=7)], path, previous=previous)
        assert load_baseline(path).entries[0].justification == "because history"

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == []

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRepoBaseline:
    def test_checked_in_baseline_is_small_and_justified(self):
        """ISSUE acceptance: <= 5 entries, each with a real justification."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        baseline = load_baseline(root / ".repro-lint-baseline.json")
        assert len(baseline.entries) <= 5
        for entry in baseline.entries:
            assert entry.justification
            assert "TODO" not in entry.justification
