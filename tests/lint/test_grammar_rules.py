"""Planted-bug tests for the wire-grammar rule family (R014-R016).

Each test writes a tiny codec-shaped module with a deliberate grammar bug
(or its fixed twin) and asserts the rule fires exactly there. The planted
shapes mirror the real tree's idioms: ``FrameSpec`` constants, preamble
surfaces, varint lengths crossing helper calls, and cursor-driven decode
loops.
"""

from repro.lint import run_lint

# ---------------------------------------------------------------------------
# R014: grammar symmetry
# ---------------------------------------------------------------------------

_SYMMETRIC_CODEC = """
    from repro.algorithms.container import (
        FrameSpec,
        append_content_checksum,
        split_content_checksum,
        verify_content_checksum,
    )

    FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1)

    def encode_frame(data, flags):
        header = FAKE_FRAME.encode_preamble(len(data)) + flags.to_bytes(2, "little")
        return append_content_checksum(header + data)

    def decode_frame(data):
        frame = verify_content_checksum(data)
        preamble, pos = FAKE_FRAME.decode_preamble(frame)
        flags = int.from_bytes(frame[pos : pos + 2], "little")
        return flags, frame[pos + 2 :]
    """


class TestR014GrammarSymmetry:
    def test_encoder_without_decoder_flagged(self, project):
        project.write(
            "src/repro/algorithms/wonly.py",
            """
            from repro.algorithms.container import FrameSpec

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=False)

            def encode_frame(data):
                return FAKE_FRAME.encode_preamble(len(data)) + data
            """,
        )
        findings = project.findings("src", rule="R014")
        assert len(findings) == 1
        assert "no decode surface" in findings[0].message
        assert "encode_frame" in findings[0].message

    def test_decoder_without_encoder_flagged(self, project):
        project.write(
            "src/repro/algorithms/ronly.py",
            """
            from repro.algorithms.container import FrameSpec

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=False)

            def decode_frame(data):
                preamble, pos = FAKE_FRAME.decode_preamble(data)
                return data[pos:]
            """,
        )
        findings = project.findings("src", rule="R014")
        assert len(findings) == 1
        assert "no encode surface" in findings[0].message

    def test_one_sided_trailing_field_flagged_with_both_sites(self, project):
        project.write(
            "src/repro/algorithms/drift.py",
            """
            from repro.algorithms.container import FrameSpec

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=False)

            def encode_frame(data, flags):
                header = FAKE_FRAME.encode_preamble(len(data))
                header += flags.to_bytes(2, "little")
                return header + data

            def decode_frame(data):
                preamble, pos = FAKE_FRAME.decode_preamble(data)
                return data[pos:]
            """,
        )
        findings = project.findings("src", rule="R014")
        # Both surfaces are cited: the writer emits fixed[2] no reader
        # consumes, and the reader's empty window has no writer.
        assert len(findings) == 2
        blamed = " ".join(f.message for f in findings)
        assert "fixed[2]" in blamed
        assert "encode_frame" in blamed and "decode_frame" in blamed

    def test_missing_checksum_verify_flagged(self, project):
        project.write(
            "src/repro/algorithms/wfmt.py",
            """
            from repro.algorithms.container import FrameSpec, append_content_checksum

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=True)

            def encode_frame(data):
                return append_content_checksum(FAKE_FRAME.encode_preamble(len(data)) + data)
            """,
        )
        project.write(
            "src/repro/algorithms/rfmt.py",
            """
            from repro.algorithms.wfmt import FAKE_FRAME

            def decode_frame(data):
                preamble, pos = FAKE_FRAME.decode_preamble(data)
                return data[: pos]
            """,
        )
        findings = project.findings("src", rule="R014")
        assert len(findings) == 1
        assert "never verifies" in findings[0].message
        assert findings[0].path.endswith("rfmt.py")

    def test_symmetric_codec_clean(self, project):
        project.write("src/repro/algorithms/okfmt.py", _SYMMETRIC_CODEC)
        assert project.findings("src", rule="R014") == []

    def test_noqa_suppresses_surface(self, project):
        project.write(
            "src/repro/algorithms/wonly.py",
            """
            from repro.algorithms.container import FrameSpec

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=False)

            def encode_frame(data):
                return FAKE_FRAME.encode_preamble(len(data)) + data  # repro: noqa[R014]
            """,
        )
        result = project.lint("src")
        assert [f for f in result.findings if f.rule == "R014"] == []
        assert result.suppressed >= 1


# ---------------------------------------------------------------------------
# R015: interprocedural allocation amplification
# ---------------------------------------------------------------------------


class TestR015AllocationAmplification:
    def test_uncapped_length_across_call_flagged(self, project):
        project.write(
            "src/repro/algorithms/fakelz.py",
            """
            from repro.common.varint import decode_varint

            def _inflate(data, size):
                out = bytearray(size)
                out[: len(data)] = data[: len(out)]
                return bytes(out)

            def decode_block(data):
                size, pos = decode_varint(data, 0)
                return _inflate(data[pos:], size)
            """,
        )
        findings = project.findings("src", rule="R015")
        assert len(findings) == 1
        message = findings[0].message
        assert "_inflate()" in message
        assert "'size'" in message
        assert "allocation" in message
        # Both blame sites: the call line and the callee's sink line.
        assert "fakelz.py:" in message

    def test_caller_side_cap_clears_taint(self, project):
        project.write(
            "src/repro/algorithms/fakelz.py",
            """
            from repro.common.errors import CorruptStreamError
            from repro.common.varint import decode_varint

            MAX_BLOCK = 1 << 20

            def _inflate(data, size):
                out = bytearray(size)
                out[: len(data)] = data[: len(out)]
                return bytes(out)

            def decode_block(data):
                size, pos = decode_varint(data, 0)
                if size > MAX_BLOCK:
                    raise CorruptStreamError("oversized block")
                return _inflate(data[pos:], size)
            """,
        )
        assert project.findings("src", rule="R015") == []

    def test_callee_side_cap_clears_sink(self, project):
        project.write(
            "src/repro/algorithms/fakelz.py",
            """
            from repro.common.errors import CorruptStreamError
            from repro.common.varint import decode_varint

            MAX_BLOCK = 1 << 20

            def _inflate(data, size):
                if size > MAX_BLOCK:
                    raise CorruptStreamError("oversized block")
                out = bytearray(size)
                out[: len(data)] = data[: len(out)]
                return bytes(out)

            def decode_block(data):
                size, pos = decode_varint(data, 0)
                return _inflate(data[pos:], size)
            """,
        )
        assert project.findings("src", rule="R015") == []

    def test_repeat_sink_flagged(self, project):
        project.write(
            "src/repro/algorithms/fakerle.py",
            """
            from repro.common.varint import decode_varint

            def _runs(byte, count):
                return bytes([byte]) * count

            def decode_runs(data):
                count, pos = decode_varint(data, 0)
                return _runs(data[pos], count)
            """,
        )
        findings = project.findings("src", rule="R015")
        assert len(findings) == 1
        assert "repeat" in findings[0].message


# ---------------------------------------------------------------------------
# R016: decoder progress
# ---------------------------------------------------------------------------


class TestR016DecoderProgress:
    def test_continue_before_cursor_advance_flagged(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_tags(data):
                pos = 0
                out = []
                while pos < len(data):
                    tag = data[pos]
                    if tag == 0:
                        continue
                    pos += 1
                    out.append(tag)
                return out
            """,
        )
        findings = project.findings("src", rule="R016")
        assert len(findings) == 1
        assert "continue" in findings[0].message

    def test_no_progress_no_exit_flagged(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_tags(data):
                pos = 0
                total = 0
                while pos < len(data):
                    total = total + data[0]
                return total
            """,
        )
        findings = project.findings("src", rule="R016")
        assert len(findings) == 1
        assert "never terminate" in findings[0].message

    def test_while_true_without_exit_flagged(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_stream(data, sink):
                while True:
                    sink.offer()
            """,
        )
        findings = project.findings("src", rule="R016")
        assert len(findings) == 1
        assert "while True" in findings[0].message

    def test_advance_before_continue_clean(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_tags(data):
                pos = 0
                out = []
                while pos < len(data):
                    tag = data[pos]
                    pos += 1
                    if tag == 0:
                        continue
                    out.append(tag)
                return out
            """,
        )
        assert project.findings("src", rule="R016") == []

    def test_while_true_with_break_clean(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_stream(reader):
                out = []
                while True:
                    chunk = reader.take()
                    if not chunk:
                        break
                    out.append(chunk)
                return out
            """,
        )
        assert project.findings("src", rule="R016") == []

    def test_encoder_loops_exempt(self, project):
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def encode_tags(data):
                pos = 0
                while pos < len(data):
                    pass
                return pos
            """,
        )
        assert project.findings("src", rule="R016") == []


# ---------------------------------------------------------------------------
# Engine interaction: worker-count parity over the new rules
# ---------------------------------------------------------------------------


class TestJobsParity:
    def test_findings_identical_across_worker_counts(self, project):
        project.write(
            "src/repro/algorithms/wonly.py",
            """
            from repro.algorithms.container import FrameSpec

            FAKE_FRAME = FrameSpec(magic=b"FAKE", version=1, has_checksum=False)

            def encode_frame(data):
                return FAKE_FRAME.encode_preamble(len(data)) + data
            """,
        )
        project.write(
            "src/repro/algorithms/spinner.py",
            """
            def decode_stream(data, sink):
                while True:
                    sink.offer()
            """,
        )
        def rows(result):
            return [
                (f.rule, f.path, f.line, f.col, f.message)
                for f in result.findings
            ]

        serial = run_lint([project.root / "src"], root=project.root, jobs=1)
        parallel = run_lint([project.root / "src"], root=project.root, jobs=4)
        assert rows(serial) == rows(parallel)
        assert {f.rule for f in serial.findings} >= {"R014", "R016"}
