"""Flow-core tests on synthetic fixtures: CFG shape, reaching defs, taint,
and call-graph summary propagation (the machinery behind R007-R009)."""

import ast
import textwrap

from repro.lint.flow import (
    analyze_taint,
    build_cfg,
    build_summaries,
    index_read_sites,
    reaching_definitions,
    scan_expr,
)
from repro.lint.flow.cfg import ExceptBind, ForIter, WithEnter
from repro.lint.flow.cfg import Test as BranchTest


def parse_func(source):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in fixture")


def cfg_of(source):
    return build_cfg(parse_func(source))


class FakeModule:
    """The duck-typed module context ``build_summaries`` consumes."""

    def __init__(self, rel, source):
        self.rel = rel
        self.source = textwrap.dedent(source)
        self.tree = ast.parse(self.source)


class TestCfgShape:
    def test_if_else_branches_and_join(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        assert cfg.supported
        conds = [e.cond[1] for e in cfg.edges() if e.cond is not None]
        assert sorted(conds) == [False, True]
        tests = [i for b in cfg.blocks for i in b.items if isinstance(i, BranchTest)]
        assert len(tests) == 1
        # The return block joins both branches and reaches the exit.
        assert cfg.block(cfg.exit).preds

    def test_if_without_else_gets_fallthrough_false_edge(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = 1
                return a
            """
        )
        false_edges = [e for e in cfg.edges() if e.cond is not None and not e.cond[1]]
        assert len(false_edges) == 1

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = cfg_of(
            """
            def f(n):
                while n > 0:
                    n = n - 1
                return n
            """
        )
        header = next(
            b.id for b in cfg.blocks if any(isinstance(i, BranchTest) for i in b.items)
        )
        # Loop body edge (True), exit edge (False), and a back edge to header.
        out = {e.cond[1] for e in cfg.block(header).succs if e.cond is not None}
        assert out == {True, False}
        assert any(e.dst == header for b in cfg.blocks for e in b.succs if b.id != header)

    def test_try_adds_exceptional_edges_to_handler(self):
        cfg = cfg_of(
            """
            def f(data):
                try:
                    x = data[0]
                except IndexError as exc:
                    x = 0
                return x
            """
        )
        handler = next(
            b.id
            for b in cfg.blocks
            if any(isinstance(i, ExceptBind) for i in b.items)
        )
        exceptional = [e for e in cfg.edges() if e.exceptional]
        assert exceptional
        assert all(e.dst == handler for e in exceptional)

    def test_with_and_for_headers_become_items(self):
        cfg = cfg_of(
            """
            def f(path, rows):
                with open(path) as fh:
                    for row in rows:
                        fh.write(row)
                return None
            """
        )
        items = [i for b in cfg.blocks for i in b.items]
        assert any(isinstance(i, WithEnter) for i in items)
        assert any(isinstance(i, ForIter) for i in items)

    def test_return_mid_function_reaches_exit(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    return 1
                return 2
            """
        )
        # Both returns converge on the single exit block.
        assert len(cfg.block(cfg.exit).preds) == 2

    def test_match_marks_cfg_unsupported(self):
        cfg = cfg_of(
            """
            def f(a):
                match a:
                    case 0:
                        return 1
                    case _:
                        return 2
            """
        )
        assert not cfg.supported

    def test_scan_expr_for_header_is_just_the_iterable(self):
        cfg = cfg_of(
            """
            def f(rows):
                for row in rows:
                    use(row[0])
            """
        )
        header_item = next(
            i for b in cfg.blocks for i in b.items if isinstance(i, ForIter)
        )
        scanned = scan_expr(header_item)
        assert isinstance(scanned, ast.Name) and scanned.id == "rows"


class TestReachingDefs:
    def test_reassignment_kills_earlier_definition(self):
        cfg = cfg_of(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        defs = reaching_definitions(cfg)
        entry = cfg.block(cfg.entry)
        # Before the return (item 2) only the second definition reaches.
        reaching = defs.defs_at(entry.id, 2)["x"]
        assert {d.index for d in reaching} == {1}

    def test_branch_definitions_merge_at_join(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        defs = reaching_definitions(cfg)
        return_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(i.node, ast.Return) for i in b.items)
        )
        reaching = defs.defs_at(return_block.id, 0)["x"]
        assert len(reaching) == 2  # one per branch

    def test_parameters_reach_entry(self):
        cfg = cfg_of(
            """
            def f(data):
                return data
            """
        )
        defs = reaching_definitions(cfg)
        reaching = defs.defs_at(cfg.entry, 0)["data"]
        assert all(d.is_param for d in reaching)

    def test_def_use_chain_finds_reads(self):
        cfg = cfg_of(
            """
            def f():
                x = 1
                y = x + 1
                return y
            """
        )
        defs = reaching_definitions(cfg)
        entry = cfg.block(cfg.entry)
        definition = next(iter(defs.defs_at(entry.id, 1)["x"]))
        uses = defs.uses_of(definition)
        assert len(uses) == 1  # read once, in the y assignment


class TestTaintKills:
    def test_unchecked_varint_length_reaches_sink(self):
        cfg = cfg_of(
            """
            def decode(buf, pos):
                length, pos = decode_varint(buf, pos)
                return buf[pos:pos + length]
            """
        )
        hits = analyze_taint(cfg).sinks()
        assert [h.kind for h in hits] == ["slice-bound"]
        assert "length" in hits[0].names

    def test_bounds_check_kills_taint_on_fallthrough(self):
        cfg = cfg_of(
            """
            def decode(buf, pos):
                length, pos = decode_varint(buf, pos)
                if length > len(buf) - pos:
                    raise CorruptStreamError("overrun")
                return buf[pos:pos + length]
            """
        )
        assert analyze_taint(cfg).sinks() == []

    def test_kill_is_transitive_through_arithmetic(self):
        # Bounding the derived value (packed bit count) bounds its source.
        cfg = cfg_of(
            """
            def decode(data):
                count = int.from_bytes(data[:2], "little")
                packed = (count * 18 + 7) // 8
                if packed > len(data):
                    raise CorruptStreamError("overrun")
                return list(range(count))
            """
        )
        assert analyze_taint(cfg).sinks() == []

    def test_min_cap_discharges_taint(self):
        cfg = cfg_of(
            """
            def decode(data):
                n = min(int.from_bytes(data[:4], "little"), 4096)
                return bytearray(n)
            """
        )
        assert analyze_taint(cfg).sinks() == []

    def test_constant_read_guarded_only_up_to_proven_length(self):
        cfg = cfg_of(
            """
            def decode_header(data):
                if len(data) < 2:
                    raise CorruptStreamError("underflow")
                return data[0], data[1], data[2]
            """
        )
        sites = analyze_taint(cfg)
        verdicts = {
            s.node.slice.value: s.guarded for s in index_read_sites(cfg, sites)
        }
        assert verdicts == {0: True, 1: True, 2: False}

    def test_loop_variable_read_checked_by_while_condition(self):
        cfg = cfg_of(
            """
            def decode_all(data):
                out = []
                pos = 0
                while pos < len(data):
                    out.append(data[pos])
                    pos = pos + 1
                return out
            """
        )
        sites = index_read_sites(cfg, analyze_taint(cfg))
        assert all(s.guarded for s in sites)


class TestSummaryPropagation:
    ERRORS = """
        class ReproError(Exception):
            pass

        class CorruptStreamError(ReproError):
            pass
    """

    def test_escape_propagates_through_helper_chain(self):
        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    def _read(data):
                        raise ValueError("boom")

                    def _parse(data):
                        return _read(data)

                    def decompress(data):
                        return _parse(data)
                    """,
                )
            ]
        )
        surface = summaries.lookup("src/repro/algorithms/toy.py", "decompress")
        assert "ValueError" in surface.escapes
        # The trace names the helper that actually raises.
        _, trace = surface.escape_traces["ValueError"]
        assert "_read" in trace

    def test_catching_caller_stops_propagation(self):
        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    def _read(data):
                        raise ValueError("boom")

                    def decompress(data):
                        try:
                            return _read(data)
                        except ValueError:
                            return b""
                    """,
                )
            ]
        )
        surface = summaries.lookup("src/repro/algorithms/toy.py", "decompress")
        assert "ValueError" not in surface.escapes

    def test_handler_for_base_class_absorbs_subclass(self):
        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    def _read(data):
                        return data[0]

                    def decompress(data):
                        try:
                            return _read(data)
                        except LookupError:
                            return b""
                    """,
                )
            ]
        )
        surface = summaries.lookup("src/repro/algorithms/toy.py", "decompress")
        assert "IndexError" not in surface.escapes

    def test_cross_module_resolution(self):
        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/helpers.py",
                    """
                    def read_word(data):
                        raise KeyError("boom")
                    """,
                ),
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    from repro.algorithms.helpers import read_word

                    def decompress(data):
                        return read_word(data)
                    """,
                ),
            ]
        )
        surface = summaries.lookup("src/repro/algorithms/toy.py", "decompress")
        assert "KeyError" in surface.escapes

    def test_project_exception_hierarchy_is_learned(self):
        summaries = build_summaries(
            [FakeModule("src/repro/common/errors.py", self.ERRORS)]
        )
        assert summaries.is_repro_error("CorruptStreamError")
        assert not summaries.is_repro_error("ValueError")

    def test_unguarded_decoder_read_implies_index_error(self):
        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    def decode_tag(data, pos):
                        return data[pos]
                    """,
                )
            ]
        )
        summary = summaries.lookup("src/repro/algorithms/toy.py", "decode_tag")
        assert "IndexError" in summary.escapes

    def test_summaries_are_plain_data(self):
        import pickle

        summaries = build_summaries(
            [
                FakeModule(
                    "src/repro/algorithms/toy.py",
                    """
                    def decompress(data):
                        return data[1:]
                    """,
                )
            ]
        )
        for summary in summaries.functions.values():
            assert pickle.loads(pickle.dumps(summary)) is not None
