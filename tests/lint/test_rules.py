"""Positive (fires) and negative (stays quiet) fixtures for every rule."""

from repro.lint import Severity, get_rule


def codes(findings):
    return [f.rule for f in findings]


class TestR001Determinism:
    def test_stdlib_random_import_fires(self, project):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        found = project.findings("src", rule="R001")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "random" in found[0].message

    def test_from_random_import_fires(self, project):
        project.write("src/repro/fleet/sampler.py", "from random import choice\n")
        assert len(project.findings("src", rule="R001")) == 1

    def test_numpy_random_call_fires(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
            """,
        )
        assert len(project.findings("src", rule="R001")) == 1

    def test_numpy_random_type_import_is_quiet(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "from numpy.random import Generator, SeedSequence\n",
        )
        assert project.findings("src", rule="R001") == []

    def test_time_derived_seed_fires(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            """
            import time
            from repro.common.rng import make_rng

            def fresh():
                return make_rng(int(time.time()), "fleet")
            """,
        )
        found = project.findings("src", rule="R001")
        assert len(found) == 1
        assert "time-derived" in found[0].message

    def test_rng_module_itself_is_exempt(self, project):
        project.write("src/repro/common/rng.py", "import numpy.random\n")
        assert project.findings("src", rule="R001") == []

    def test_tests_are_exempt(self, project):
        project.write("tests/test_sampler.py", "import random\n")
        assert project.findings("tests", rule="R001") == []


class TestR002DecoderSafety:
    def test_unguarded_decoder_demoted_to_flow_rule(self, project):
        # Flow-modelable decoders are R009's jurisdiction now; the R002
        # heuristic stays quiet for them so each site is judged precisely.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_header(data):
                return data[0] | (data[1] << 8)
            """,
        )
        assert project.findings("src", rule="R002") == []
        found = project.findings("src", rule="R009")
        assert len(found) == 2  # one per unguarded read
        assert all("decode_header" in f.message for f in found)

    def test_unmodelable_decoder_falls_back_to_heuristic(self, project):
        # A match statement marks the CFG unsupported, so the syntactic
        # R002 check is the only line of defence and must still fire.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_header(data):
                match data[0]:
                    case 0:
                        return data[1]
                    case _:
                        return data[2] | (data[3] << 8)
            """,
        )
        assert project.findings("src", rule="R009") == []
        found = project.findings("src", rule="R002")
        assert len(found) == 1
        assert "decode_header" in found[0].message

    def test_decoder_raising_corrupt_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            def decode_header(data):
                if len(data) < 2:
                    raise CorruptStreamError("underflow")
                return data[0] | (data[1] << 8)
            """,
        )
        assert project.findings("src", rule="R002") == []

    def test_untranslated_index_error_fires(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_tag(data):
                try:
                    return data[0]
                except IndexError:
                    return None
            """,
        )
        found = project.findings("src", rule="R002")
        assert any("IndexError" in f.message for f in found)

    def test_translated_index_error_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            def decode_tag(data):
                try:
                    return data[0]
                except IndexError:
                    raise CorruptStreamError("truncated at tag byte")
            """,
        )
        assert project.findings("src", rule="R002") == []

    def test_broad_except_is_error_in_codec_tree(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def helper(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
        )
        found = project.findings("src", rule="R002")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_broad_except_is_warning_outside_codec_tree(self, project):
        project.write(
            "src/repro/analysis/report.py",
            """
            def helper(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
        )
        found = project.findings("src", rule="R002")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_broad_except_with_reraise_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def helper(path):
                try:
                    return open(path).read()
                except Exception:
                    raise
            """,
        )
        assert project.findings("src", rule="R002") == []

    def test_encoder_functions_are_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def encode_header(data):
                return data[0] | (data[1] << 8)
            """,
        )
        assert project.findings("src", rule="R002") == []


class TestR003CalibrationHygiene:
    def test_frequency_literal_fires(self, project):
        project.write(
            "src/repro/sim/clock.py",
            """
            def period(cycles):
                return cycles / 2.1e9
            """,
        )
        found = project.findings("src", rule="R003")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_paper_anchor_is_error(self, project):
        project.write(
            "src/repro/sim/area.py",
            """
            def area():
                return 17.98
            """,
        )
        found = project.findings("src", rule="R003")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_nanosecond_literal_fires(self, project):
        project.write(
            "src/repro/sim/lat.py",
            """
            def latency():
                return 25e-9
            """,
        )
        assert len(project.findings("src", rule="R003")) == 1

    def test_numerical_epsilon_is_quiet(self, project):
        project.write(
            "src/repro/analysis/stats.py",
            """
            def safe_div(a, b):
                return a / (b + 1e-12)
            """,
        )
        assert project.findings("src", rule="R003") == []

    def test_inline_power_of_two_size_fires(self, project):
        project.write(
            "src/repro/sim/buffers.py",
            """
            def capacity():
                return 16384
            """,
        )
        assert len(project.findings("src", rule="R003")) == 1

    def test_all_caps_module_constant_is_quiet(self, project):
        project.write("src/repro/sim/buffers.py", "BUFFER_BYTES = 16384\n")
        assert project.findings("src", rule="R003") == []

    def test_calibration_module_is_exempt(self, project):
        project.write("src/repro/core/calibration.py", "XEON_HZ = 2.45e9\nAREA = 17.98\n")
        assert project.findings("src", rule="R003") == []


class TestR004ApiHygiene:
    def test_mutable_default_fires_as_error(self, project):
        project.write(
            "src/repro/fleet/api.py",
            """
            def collect(into=[]):
                return into
            """,
        )
        found = project.findings("src", rule="R004")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_immutable_default_is_quiet(self, project):
        project.write(
            "src/repro/fleet/api.py",
            """
            def collect(into=(), label=None):
                return list(into)
            """,
        )
        assert project.findings("src", rule="R004") == []

    def test_float_equality_assert_fires(self, project):
        project.write(
            "src/repro/fleet/api.py",
            """
            def check(ratio):
                assert ratio == 2.5
            """,
        )
        found = project.findings("src", rule="R004")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_params_dataclass_without_validation_fires(self, project):
        project.write(
            "src/repro/core/knobs.py",
            """
            from dataclasses import dataclass

            @dataclass
            class WidgetParams:
                lanes: int = 4
            """,
        )
        found = project.findings("src", rule="R004")
        assert len(found) == 1
        assert "WidgetParams" in found[0].message

    def test_params_dataclass_with_post_init_is_quiet(self, project):
        project.write(
            "src/repro/core/knobs.py",
            """
            from dataclasses import dataclass

            @dataclass
            class WidgetParams:
                lanes: int = 4

                def __post_init__(self):
                    if self.lanes < 1:
                        raise ValueError("lanes must be positive")
            """,
        )
        assert project.findings("src", rule="R004") == []


class TestR005RegistryCompleteness:
    def _registry(self, project, *, test_body="def test_rt():\n    c.decompress(b'')\n"):
        project.write(
            "src/repro/algorithms/registry.py",
            """
            from repro.algorithms.mycodec import MyCodec

            _CODEC_FACTORIES = {
                "mycodec": MyCodec,
            }
            """,
        )
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            class MyCodec:
                def compress(self, data):
                    return data

                def decompress(self, data):
                    return data
            """,
        )
        if test_body is not None:
            project.write("tests/algorithms/test_mycodec.py", test_body)

    def test_complete_registration_is_quiet(self, project):
        self._registry(project)
        assert project.findings("src", rule="R005") == []

    def test_missing_test_file_fires(self, project):
        self._registry(project, test_body=None)
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "test_mycodec.py" in found[0].message
        assert found[0].severity is Severity.ERROR

    def test_test_without_decompress_is_warning(self, project):
        self._registry(project, test_body="def test_construct():\n    pass\n")
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_missing_decoder_method_fires(self, project):
        self._registry(project)
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            class MyCodec:
                def compress(self, data):
                    return data
            """,
        )
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "decompress" in found[0].message

    def test_no_registry_means_no_findings(self, project):
        project.write("src/repro/fleet/api.py", "X = 1\n")
        assert project.findings("src", rule="R005") == []

    def test_buffer_transform_surface_is_complete(self, project):
        """The streaming refactor's surface counts: ``_compress_buffer``/
        ``_decompress_buffer`` (or context factories) satisfy R005."""
        self._registry(project)
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            class MyCodec:
                def _compress_buffer(self, data):
                    return data

                def _decompress_buffer(self, data):
                    return data
            """,
        )
        assert project.findings("src", rule="R005") == []

    def test_context_only_surface_is_complete(self, project):
        self._registry(project)
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            class MyCodec:
                def compress_context(self):
                    return object()

                def decompress_context(self):
                    return object()
            """,
        )
        assert project.findings("src", rule="R005") == []

    def _graph_layer(self, project, presets, *, with_test=True):
        self._registry(project)
        project.write(
            "src/repro/algorithms/stages.py",
            """
            _STAGE_TYPES = {
                "delta": object,
                "fse": object,
            }
            ENTROPY_BACKENDS = ("fse",)
            """,
        )
        project.write("src/repro/algorithms/graphs.py", presets)
        if with_test:
            project.write(
                "tests/algorithms/test_graphs.py",
                "def test_rt():\n    c.decompress(b'')\n",
            )

    def test_valid_graph_presets_are_quiet(self, project):
        self._graph_layer(
            project,
            """
            GRAPH_PRESETS = {
                "graph-delta-fse": (("delta", 1), ("fse",)),
            }
            """,
        )
        assert project.findings("src", rule="R005") == []

    def test_unknown_stage_in_preset_fires(self, project):
        self._graph_layer(
            project,
            """
            GRAPH_PRESETS = {
                "graph-bogus": (("wavelet", 2), ("fse",)),
            }
            """,
        )
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "wavelet" in found[0].message

    def test_transform_terminated_preset_fires(self, project):
        self._graph_layer(
            project,
            """
            GRAPH_PRESETS = {
                "graph-headless": (("delta", 1),),
            }
            """,
        )
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "ENTROPY_BACKENDS" in found[0].message

    def test_unprefixed_preset_name_fires(self, project):
        self._graph_layer(
            project,
            """
            GRAPH_PRESETS = {
                "deltafse": (("delta", 1), ("fse",)),
            }
            """,
        )
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "graph-" in found[0].message

    def test_missing_graph_test_file_fires(self, project):
        self._graph_layer(
            project,
            """
            GRAPH_PRESETS = {
                "graph-delta-fse": (("delta", 1), ("fse",)),
            }
            """,
            with_test=False,
        )
        found = project.findings("src", rule="R005")
        assert len(found) == 1
        assert "test_graphs.py" in found[0].message


class TestR006ContainerFraming:
    def test_inline_magic_comparison_fires(self, project):
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            MAGIC = b"XY"

            def decode(data):
                if data[:2] != MAGIC:
                    raise ValueError("bad magic")
            """,
        )
        found = project.findings("src", rule="R006")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "MAGIC" in found[0].message

    def test_framespec_keyword_declaration_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            from repro.algorithms.container import FrameSpec

            MAGIC = b"XY"
            MY_FRAME = FrameSpec(display="my frame", magic=MAGIC)
            """,
        )
        assert project.findings("src", rule="R006") == []

    def test_definition_alone_is_quiet(self, project):
        project.write("src/repro/algorithms/mycodec.py", 'MAGIC = b"XY"\n')
        assert project.findings("src", rule="R006") == []

    def test_prefixed_magic_and_stream_identifier_fire(self, project):
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            DICT_MAGIC = b"AB"
            STREAM_IDENTIFIER = b"CDEF"

            def encode():
                return DICT_MAGIC + STREAM_IDENTIFIER
            """,
        )
        assert len(project.findings("src", rule="R006")) == 2

    def test_chunk_type_constant_is_quiet(self, project):
        # CHUNK_STREAM_IDENTIFIER is a chunk *type byte*, not the magic.
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            CHUNK_STREAM_IDENTIFIER = 0xFF

            def first_byte_ok(stream):
                return stream[0] == CHUNK_STREAM_IDENTIFIER
            """,
        )
        assert project.findings("src", rule="R006") == []

    def test_attribute_load_fires(self, project):
        project.write(
            "src/repro/algorithms/mycodec.py",
            """
            from repro.algorithms import zstd

            def sniff(data):
                return data[:4] == zstd.MAGIC
            """,
        )
        found = project.findings("src", rule="R006")
        assert len(found) == 1
        assert "zstd.MAGIC" in found[0].message

    def test_container_module_is_exempt(self, project):
        project.write(
            "src/repro/algorithms/container.py",
            """
            def check(data, magic):
                if data[: len(magic)] != magic:
                    raise ValueError
            MAGIC = b"XY"
            USE = MAGIC + b"!"
            """,
        )
        assert project.findings("src", rule="R006") == []

    def test_tests_are_exempt(self, project):
        project.write(
            "tests/algorithms/test_mycodec.py",
            """
            from repro.algorithms.zstd import MAGIC

            def test_magic():
                assert MAGIC == b"ZSRL"
            """,
        )
        assert project.findings("tests", rule="R006") == []

    def test_stage_id_read_outside_stage_registry_fires(self, project):
        project.write(
            "src/repro/algorithms/mygraphs.py",
            """
            from repro.algorithms.stages import DeltaStage

            def descriptor(stage):
                return (DeltaStage.STAGE_ID, stage.params())
            """,
        )
        found = project.findings("src", rule="R006")
        assert len(found) == 1
        assert "STAGE_ID" in found[0].message

    def test_stage_id_in_stage_registry_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/stages.py",
            """
            class DeltaStage:
                STAGE_ID = 1

            _STAGES_BY_ID = {DeltaStage.STAGE_ID: DeltaStage}
            """,
        )
        assert project.findings("src", rule="R006") == []

    def test_stage_id_definition_alone_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/mystage.py",
            """
            class MyStage:
                STAGE_ID = 7
            """,
        )
        assert project.findings("src", rule="R006") == []


class TestR007ExceptionContract:
    def test_struct_error_leak_fires(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            import struct

            def decompress(data):
                return struct.unpack("<I", data[:4])[0]
            """,
        )
        found = project.findings("src", rule="R007")
        assert len(found) == 1
        assert "error" in found[0].message
        assert "decompress" in found[0].message

    def test_translated_struct_error_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            import struct

            from repro.common.errors import CorruptStreamError

            def decompress(data):
                try:
                    return struct.unpack("<I", data[:4])[0]
                except struct.error:
                    raise CorruptStreamError("truncated word")
            """,
        )
        assert project.findings("src", rule="R007") == []

    def test_leak_through_helper_carries_trace(self, project):
        # The IndexError originates two frames below the surface; the
        # call-graph fixpoint must carry it up and name the helper chain.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def _read_tag(data):
                return data[0]

            def _parse_header(data):
                return _read_tag(data) << 8

            def decompress(data):
                return _parse_header(data)
            """,
        )
        found = project.findings("src", rule="R007")
        assert any("IndexError" in f.message for f in found)
        assert any("_read_tag" in f.message for f in found)

    def test_guarded_helper_chain_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            def _read_tag(data):
                if not data:
                    raise CorruptStreamError("empty stream")
                return data[0]

            def decompress(data):
                return _read_tag(data) << 8
            """,
        )
        assert project.findings("src", rule="R007") == []

    def test_non_surface_helpers_not_reported_directly(self, project):
        # Leaks are reported at surfaces, not at every internal helper.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            import struct

            def _inner(data):
                return struct.unpack("<I", data[:4])[0]
            """,
        )
        assert project.findings("src", rule="R007") == []


class TestR008TaintedLength:
    def test_planted_unchecked_varint_slice_fires(self, project):
        # The acceptance-criterion snippet: a varint length drives a slice
        # bound with no bounds check in between.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.varint import decode_varint

            def decode_block(buf, pos):
                length, pos = decode_varint(buf, pos)
                return buf[pos:pos + length]
            """,
        )
        found = project.findings("src", rule="R008")
        assert len(found) == 1
        assert "length" in found[0].message
        assert "slice-bound" in found[0].message

    def test_planted_guarded_varint_slice_is_quiet(self, project):
        # Same snippet with the canonical guard: comparison against the
        # remaining buffer kills the taint on the fall-through edge.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError
            from repro.common.varint import decode_varint

            def decode_block(buf, pos):
                length, pos = decode_varint(buf, pos)
                if length > len(buf) - pos:
                    raise CorruptStreamError("declared length overruns buffer")
                return buf[pos:pos + length]
            """,
        )
        assert project.findings("src", rule="R008") == []

    def test_unchecked_range_limit_fires(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_tokens(data):
                count = int.from_bytes(data[:4], "little")
                return [data[4 + i] for i in range(count)]
            """,
        )
        found = project.findings("src", rule="R008")
        assert any("range-limit" in f.message for f in found)

    def test_capped_range_limit_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            MAX_TOKENS = 4096

            def decode_tokens(data):
                count = int.from_bytes(data[:4], "little")
                if count > MAX_TOKENS:
                    raise CorruptStreamError("token count exceeds limit")
                return list(range(count))
            """,
        )
        assert project.findings("src", rule="R008") == []

    def test_attacker_sized_repeat_fires(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_rle(data):
                size = int.from_bytes(data[:8], "little")
                return data[8:9] * size
            """,
        )
        found = project.findings("src", rule="R008")
        assert any("repeat" in f.message for f in found)

    def test_min_capped_size_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def decode_rle(data):
                size = min(int.from_bytes(data[:8], "little"), 65536)
                return data[8:9] * size
            """,
        )
        assert project.findings("src", rule="R008") == []

    def test_tests_are_exempt(self, project):
        project.write(
            "tests/algorithms/test_toy.py",
            """
            def helper(buf):
                n = int.from_bytes(buf[:4], "little")
                return buf[4:4 + n]
            """,
        )
        assert project.findings("tests", rule="R008") == []


class TestR009GuardedRead:
    def test_read_after_partial_guard_fires(self, project):
        # R002's heuristic would pass this ("mentions CorruptStreamError");
        # flow analysis sees data[2] is not covered by the len(data) < 2 check.
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            def decode_header(data):
                if len(data) < 2:
                    raise CorruptStreamError("underflow")
                version = data[0] | (data[1] << 8)
                return version, data[2]
            """,
        )
        found = project.findings("src", rule="R009")
        assert len(found) == 1
        assert found[0].line == 8

    def test_translating_try_is_quiet(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            from repro.common.errors import CorruptStreamError

            def decode_tag(data, pos):
                try:
                    return data[pos]
                except IndexError:
                    raise CorruptStreamError("truncated at tag byte")
            """,
        )
        assert project.findings("src", rule="R009") == []

    def test_encoder_reads_are_out_of_scope(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            def encode_header(version):
                table = bytes([1, 2, 3])
                return table[0] | (table[1] << 8)
            """,
        )
        assert project.findings("src", rule="R009") == []

    def test_non_decoder_tree_is_out_of_scope(self, project):
        project.write(
            "src/repro/analysis/report.py",
            """
            def decode_row(fields):
                return fields[0]
            """,
        )
        assert project.findings("src", rule="R009") == []


class TestRuleRegistry:
    def test_all_sixteen_rules_registered(self):
        from repro.lint import all_rules

        assert [r.code for r in all_rules()] == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011", "R012", "R013",
            "R014", "R015", "R016",
        ]

    def test_get_rule_by_code(self):
        assert get_rule("R001").name == "determinism"
