"""Fixtures for the lint-framework tests: tiny synthetic projects on disk."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint


class FakeProject:
    """A throwaway project tree the linter can be pointed at."""

    def __init__(self, root: Path) -> None:
        self.root = root
        (root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")

    def write(self, rel: str, source: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def lint(self, *paths, rules=None):
        targets = [self.root / p for p in paths] or [self.root / "src"]
        return run_lint(targets, root=self.root, rules=rules)

    def findings(self, *paths, rule=None, rules=None):
        result = self.lint(*paths, rules=rules)
        if rule is None:
            return result.findings
        return [f for f in result.findings if f.rule == rule]


@pytest.fixture
def project(tmp_path):
    return FakeProject(tmp_path)
