"""Suppression and baseline interaction for the flow-sensitive rules.

Flow-sensitive findings have two candidate homes: the *surface* site (the
public function / pool dispatch where the contract is declared) and the
*blame* site (the statement that actually violates it, possibly frames
away). ``# repro: noqa[...]`` applies to the reported line only, so the
rules' choice of report site IS the suppression contract:

* R007 reports at the blame line inside the surface function — suppress
  there, not at the helper that raised.
* R009 reports at the unguarded read — suppress at the read.
* R010 reports at the dispatch (that is both surface and blame: the fix is
  to change what is dispatched).
* R011 reports at the offending write, frames below the dispatch —
  suppress at the write; a noqa on the dispatch line must NOT silence it.

The baseline must grandfather the same lines the engine reports, so these
tests also pin the round-trip: update-baseline -> clean run -> stale entry
detection when the offending line disappears.
"""

import json

from repro.lint.cli import main as lint_main

#: An R011 violation: the worker mutates module state two frames down.
_R011_PROJECT = """
from concurrent.futures import ProcessPoolExecutor

_SEEN = []

def _remember(x):
    _SEEN.append(x){write_noqa}

def work(x):
    _remember(x)
    return x

def run(items):
    with ProcessPoolExecutor() as pool:{dispatch_noqa_pad}
        return [pool.submit(work, i) for i in items]{dispatch_noqa}
"""


def _r011_source(write_noqa: str = "", dispatch_noqa: str = "") -> str:
    return _R011_PROJECT.format(
        write_noqa=write_noqa, dispatch_noqa=dispatch_noqa, dispatch_noqa_pad=""
    )


class TestBlameVsSurfaceSuppression:
    def test_r011_noqa_at_write_site_suppresses(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            _r011_source(write_noqa="  # repro: noqa[R011]"),
        )
        assert project.findings("src", rule="R011") == []

    def test_r011_noqa_at_dispatch_site_does_not_suppress(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            _r011_source(dispatch_noqa="  # repro: noqa[R011]"),
        )
        assert len(project.findings("src", rule="R011")) == 1

    def test_r010_noqa_at_dispatch_site_suppresses(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda x: x, i) for i in items]  # repro: noqa[R010]
            """,
        )
        assert project.findings("src", rule="R010") == []

    def test_r007_noqa_at_blame_line_suppresses(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            import struct

            def decompress(data):
                return struct.unpack("<I", data[:4])[0]  # repro: noqa[R007]
            """,
        )
        assert project.findings("src", rule="R007") == []

    def test_r007_noqa_on_def_line_does_not_suppress(self, project):
        project.write(
            "src/repro/algorithms/toy.py",
            """
            import struct

            def decompress(data):  # repro: noqa[R007]
                return struct.unpack("<I", data[:4])[0]
            """,
        )
        assert len(project.findings("src", rule="R007")) == 1

    def test_r009_noqa_at_read_site_suppresses(self, project):
        project.write(
            "src/repro/core/blocks/toy.py",
            """
            def decode_token(data, pos):
                if pos < len(data):
                    return data[pos]
                return data[pos + 1]  # repro: noqa[R009]
            """,
        )
        assert project.findings("src", rule="R009") == []

    def test_r012_noqa_at_hazard_line_suppresses(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import os

            def manifest(root):
                return [n for n in os.listdir(root)]  # repro: noqa[R012]
            """,
        )
        assert project.findings("src", rule="R012") == []

    def test_r013_noqa_at_call_suppresses(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import time

            async def serve(request):
                time.sleep(0.1)  # repro: noqa[R013]
                return request
            """,
        )
        assert project.findings("src", rule="R013") == []


class TestBaselineInteraction:
    def _baseline(self, project):
        return project.root / ".repro-lint-baseline.json"

    def test_r011_finding_baselines_and_then_passes(self, project, capsys):
        project.write("src/repro/fleet/sweep.py", _r011_source())
        src = str(project.root / "src")
        baseline = str(self._baseline(project))
        assert (
            lint_main(
                [
                    src,
                    "--baseline",
                    baseline,
                    "--update-baseline",
                    "--justification",
                    "legacy worker accumulates locally; rework tracked",
                ]
            )
            == 0
        )
        capsys.readouterr()
        entries = json.loads(self._baseline(project).read_text())["findings"]
        assert [e["rule"] for e in entries] == ["R011"]
        assert entries[0]["snippet"] == "_SEEN.append(x)"  # blame site, not dispatch
        # Grandfathered: the strict run is clean now.
        assert lint_main([src, "--strict", "--baseline", baseline]) == 0

    def test_fixing_the_write_makes_baseline_entry_stale(self, project, capsys):
        project.write("src/repro/fleet/sweep.py", _r011_source())
        src = str(project.root / "src")
        baseline = str(self._baseline(project))
        lint_main(
            [
                src,
                "--baseline",
                baseline,
                "--update-baseline",
                "--justification",
                "legacy worker accumulates locally; rework tracked",
            ]
        )
        # Fix the violation: the worker now returns instead of appending.
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        capsys.readouterr()
        # Strict mode flags the now-stale grandfathered entry.
        assert lint_main([src, "--strict", "--baseline", baseline]) == 1
        out = capsys.readouterr().out + capsys.readouterr().err
        assert "stale" in out.lower()
