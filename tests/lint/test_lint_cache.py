"""Content-hash lint cache: warm hits, invalidation, eviction, atomicity."""

import json

from repro.lint import run_lint
from repro.lint.cache import CACHE_SCHEMA_VERSION, LintCache
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule


class CountingRule(Rule):
    """A rule that counts invocations — cache hits must not re-run it."""

    code = "R001"  # reuse a known code so Severity parsing etc. stays happy
    name = "counting"
    summary = "test double"
    default_severity = Severity.ERROR

    def __init__(self):
        self.calls = 0

    def check(self, project):
        self.calls += 1
        for ctx in project.modules:
            if "random" in ctx.source:
                yield ctx.finding(self, 1, "counted finding")


class TestWarmHits:
    def test_second_run_replays_without_rerunning_rules(self, project, tmp_path):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        cache = LintCache(tmp_path / "lint-cache")
        rule = CountingRule()
        first = run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        second = run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        assert rule.calls == 1
        assert [f.to_json() for f in first.findings] == [
            f.to_json() for f in second.findings
        ]
        assert second.files_checked == first.files_checked

    def test_edited_file_misses(self, project, tmp_path):
        target = project.write("src/repro/fleet/sampler.py", "import random\n")
        cache = LintCache(tmp_path / "lint-cache")
        rule = CountingRule()
        run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        target.write_text("import random  # edited\n")
        run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        assert rule.calls == 2

    def test_added_file_misses(self, project, tmp_path):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        cache = LintCache(tmp_path / "lint-cache")
        rule = CountingRule()
        run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        project.write("src/repro/fleet/extra.py", "X = 1\n")
        run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        assert rule.calls == 2


class TestKeying:
    FILES = [("src/a.py", "digest-a"), ("src/b.py", "digest-b")]

    def test_key_is_order_insensitive_in_files(self, tmp_path):
        cache = LintCache(tmp_path)
        assert cache.key(1, ["R001"], self.FILES) == cache.key(
            1, ["R001"], list(reversed(self.FILES))
        )

    def test_key_changes_with_ruleset_version(self, tmp_path):
        cache = LintCache(tmp_path)
        assert cache.key(1, ["R001"], self.FILES) != cache.key(2, ["R001"], self.FILES)

    def test_key_changes_with_rule_selection(self, tmp_path):
        cache = LintCache(tmp_path)
        assert cache.key(1, ["R001"], self.FILES) != cache.key(
            1, ["R001", "R002"], self.FILES
        )

    def test_key_changes_with_any_file_digest(self, tmp_path):
        cache = LintCache(tmp_path)
        changed = [("src/a.py", "digest-a2"), ("src/b.py", "digest-b")]
        assert cache.key(1, ["R001"], self.FILES) != cache.key(1, ["R001"], changed)


class TestEviction:
    def test_schema_mismatch_evicts_entries(self, tmp_path):
        cache = LintCache(tmp_path / "store")
        cache.put("k", {"findings": []})
        assert cache.get("k") is not None
        # Simulate a store written by an older layout.
        (tmp_path / "store" / "SCHEMA").write_text(str(CACHE_SCHEMA_VERSION + 1))
        fresh = LintCache(tmp_path / "store")
        assert fresh.get("k") is None
        assert (tmp_path / "store" / "SCHEMA").read_text().strip() == str(
            CACHE_SCHEMA_VERSION
        )

    def test_corrupt_entry_is_miss_and_deleted(self, tmp_path):
        cache = LintCache(tmp_path / "store")
        cache.put("k", {"findings": []})
        entry = tmp_path / "store" / "k.json"
        entry.write_text("{not json")
        assert cache.get("k") is None
        assert not entry.exists()

    def test_incompatible_payload_is_miss_not_crash(self, project, tmp_path):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        cache = LintCache(tmp_path / "store")
        rule = CountingRule()
        run_lint([project.root / "src"], root=project.root, rules=[rule], cache=cache)
        # Overwrite the stored payload with a wrong-shaped one.
        entries = list((tmp_path / "store").glob("*.json"))
        assert len(entries) == 1
        entries[0].write_text(json.dumps({"findings": [{"bogus": True}]}))
        result = run_lint(
            [project.root / "src"], root=project.root, rules=[rule], cache=cache
        )
        assert rule.calls == 2  # fell back to a real run
        assert [f.rule for f in result.findings] == ["R001"]

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = LintCache(tmp_path / "store")
        cache.put("k", {"findings": [Finding(
            rule="R001", path="src/x.py", line=1, col=0,
            severity=Severity.ERROR, message="m",
        ).to_json()]})
        leftovers = [p for p in (tmp_path / "store").iterdir() if ".tmp." in p.name]
        assert leftovers == []
