"""CLI behaviour: exit codes, formats, baseline flags, repro-CLI wiring."""

import json

import jsonschema

from repro.lint.cli import main

#: Structural subset of the SARIF 2.1.0 schema covering everything this
#: tool emits. The full upstream schema is not vendored; this pins the
#: load-bearing shape (versioning, tool.driver.rules, result locations)
#: so a regression cannot silently break code-scanning upload.
SARIF_21_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    }
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        project.write("src/repro/clean.py", "X = 1\n")
        assert main([str(project.root / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_error_finding_exits_one(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        assert main([str(project.root / "src")]) == 1
        assert "R001" in capsys.readouterr().out

    def test_warning_passes_by_default_fails_strict(self, project, capsys):
        project.write(
            "src/repro/sim/clock.py",
            "def period(cycles):\n    return cycles / 2.1e9\n",
        )
        assert main([str(project.root / "src")]) == 0
        assert main([str(project.root / "src"), "--strict"]) == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["/definitely/not/a/path"]) == 2

    def test_baselined_finding_passes(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        assert main([src, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_update_baseline_requires_justification(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline"]) == 2
        assert "justification" in capsys.readouterr().err

    def test_update_baseline_rejects_placeholder(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        rc = main([src, "--update-baseline", "--justification", "TODO: fix"])
        assert rc == 2
        assert "deferral" in capsys.readouterr().err

    def test_no_baseline_flag_resurfaces_findings(self, project):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        assert main([src, "--no-baseline"]) == 1

    def test_stale_baseline_fails_only_under_strict(self, project):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        project.write("src/repro/fleet/sampler.py", "X = 1\n")  # fixed
        assert main([src]) == 0
        assert main([src, "--strict"]) == 1


class TestJsonFormat:
    def test_json_output_parses_and_carries_findings(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        main([str(project.root / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] >= 1
        assert [f["rule"] for f in payload["findings"]] == ["R001"]


class TestSarifFormat:
    def _emit(self, project, capsys, *extra):
        main([str(project.root / "src"), "--format", "sarif", *extra])
        return json.loads(capsys.readouterr().out)

    def test_log_validates_against_sarif_21_schema(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        log = self._emit(project, capsys)
        jsonschema.validate(log, SARIF_21_SCHEMA)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_all_rules_declared_and_results_indexed(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        log = self._emit(project, capsys)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        expected = [f"R{i:03d}" for i in range(1, 17)]
        assert [r["id"] for r in rules] == expected
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "R001"
        assert result["level"] == "error"
        assert rules[result["ruleIndex"]]["id"] == "R001"

    def test_concurrency_rules_carry_help_markdown(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        log = self._emit(project, capsys)
        rules = {r["id"]: r for r in log["runs"][0]["tool"]["driver"]["rules"]}
        for code in ("R010", "R011", "R012", "R013", "R014", "R015", "R016"):
            help_block = rules[code]["help"]
            assert help_block["markdown"] == help_block["text"]
            assert help_block["markdown"]

    def test_columns_are_one_based(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        log = self._emit(project, capsys)
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_baselined_findings_carry_suppressions(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        capsys.readouterr()
        log = self._emit(project, capsys)
        jsonschema.validate(log, SARIF_21_SCHEMA)
        (result,) = log["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"

    def test_fingerprints_present_for_dedup(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        log = self._emit(project, capsys)
        fingerprints = log["runs"][0]["results"][0]["partialFingerprints"]
        assert "reproLintFingerprint/v1" in fingerprints


class TestJobsAndCache:
    FIXTURES = {
        "src/repro/fleet/sampler.py": "import random\n",
        "src/repro/algorithms/toy.py": """
            def decompress(data):
                length = int.from_bytes(data[:4], "little")
                return data[4:4 + length]
        """,
        "src/repro/algorithms/helper.py": """
            def _read(data, pos):
                return data[pos]
        """,
        "src/repro/sim/clock.py": "def period(cycles):\n    return cycles / 2.1e9\n",
        "src/repro/common/util.py": "X = 1\n",
    }

    def _populate(self, project):
        for rel, source in self.FIXTURES.items():
            project.write(rel, source)

    def test_jobs_4_output_is_byte_identical_to_jobs_1(self, project, capsys):
        self._populate(project)
        src = str(project.root / "src")
        main([src, "--format", "sarif", "--no-cache", "--jobs", "1"])
        serial = capsys.readouterr().out
        main([src, "--format", "sarif", "--no-cache", "--jobs", "4"])
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert json.loads(serial)["runs"][0]["results"]  # non-trivial run

    def test_invalid_jobs_is_usage_error(self, project, capsys):
        self._populate(project)
        assert main([str(project.root / "src"), "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_jobs_env_var_is_validated(self, project, capsys, monkeypatch):
        self._populate(project)
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert main([str(project.root / "src")]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_cache_dir_created_by_default_not_with_no_cache(self, project):
        self._populate(project)
        src = str(project.root / "src")
        cache_dir = project.root / "results" / ".lint-cache"
        main([src, "--no-cache"])
        assert not cache_dir.exists()
        main([src])
        assert any(cache_dir.glob("*.json"))

    def test_warm_cache_matches_cold_output(self, project, capsys):
        self._populate(project)
        src = str(project.root / "src")
        main([src, "--format", "json"])
        cold = capsys.readouterr().out
        main([src, "--format", "json"])
        warm = capsys.readouterr().out
        assert cold == warm


class TestReproCliWiring:
    def test_lint_subcommand_forwards(self, project, capsys):
        from repro.cli import main as repro_main

        project.write("src/repro/fleet/sampler.py", "import random\n")
        rc = repro_main(["lint", str(project.root / "src")])
        assert rc == 1
        assert "R001" in capsys.readouterr().out

    def test_module_entry_point_exists(self):
        import repro.lint.__main__  # noqa: F401
