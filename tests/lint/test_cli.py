"""CLI behaviour: exit codes, formats, baseline flags, repro-CLI wiring."""

import json

from repro.lint.cli import main


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        project.write("src/repro/clean.py", "X = 1\n")
        assert main([str(project.root / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_error_finding_exits_one(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        assert main([str(project.root / "src")]) == 1
        assert "R001" in capsys.readouterr().out

    def test_warning_passes_by_default_fails_strict(self, project, capsys):
        project.write(
            "src/repro/sim/clock.py",
            "def period(cycles):\n    return cycles / 2.1e9\n",
        )
        assert main([str(project.root / "src")]) == 0
        assert main([str(project.root / "src"), "--strict"]) == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["/definitely/not/a/path"]) == 2

    def test_baselined_finding_passes(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        assert main([src, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_update_baseline_requires_justification(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline"]) == 2
        assert "justification" in capsys.readouterr().err

    def test_update_baseline_rejects_placeholder(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        rc = main([src, "--update-baseline", "--justification", "TODO: fix"])
        assert rc == 2
        assert "deferral" in capsys.readouterr().err

    def test_no_baseline_flag_resurfaces_findings(self, project):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        assert main([src, "--no-baseline"]) == 1

    def test_stale_baseline_fails_only_under_strict(self, project):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        src = str(project.root / "src")
        assert main([src, "--update-baseline", "--justification", "legacy rng"]) == 0
        project.write("src/repro/fleet/sampler.py", "X = 1\n")  # fixed
        assert main([src]) == 0
        assert main([src, "--strict"]) == 1


class TestJsonFormat:
    def test_json_output_parses_and_carries_findings(self, project, capsys):
        project.write("src/repro/fleet/sampler.py", "import random\n")
        main([str(project.root / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] >= 1
        assert [f["rule"] for f in payload["findings"]] == ["R001"]


class TestReproCliWiring:
    def test_lint_subcommand_forwards(self, project, capsys):
        from repro.cli import main as repro_main

        project.write("src/repro/fleet/sampler.py", "import random\n")
        rc = repro_main(["lint", str(project.root / "src")])
        assert rc == 1
        assert "R001" in capsys.readouterr().out

    def test_module_entry_point_exists(self):
        import repro.lint.__main__  # noqa: F401
