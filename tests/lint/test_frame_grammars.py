"""Tier-1 drift gate for the committed wire-grammar artifact.

``results/frame_grammars.json`` pins the statically extracted frame layout
of every codec (see :mod:`repro.lint.flow.grammar` and DESIGN.md §7.9).
These tests fail when the source tree's grammars no longer match the
committed snapshot — and the layout *fingerprint* makes the failure mode
explicit: it covers field order, widths, and varint ``max_bits`` but not
the version byte's value, so a frame-layout change is only ever legitimate
together with a version bump (plus an artifact regen), exactly like a wire
format rollout across a fleet of decoders.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.algorithms.registry import available_codecs
from repro.lint.flow.grammar import FrameGrammar, extract_project_grammars
from repro.tools.regen_grammars import ARTIFACT, render

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def committed():
    return json.loads((ROOT / ARTIFACT).read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def extracted():
    return extract_project_grammars(ROOT)


class TestArtifactDrift:
    def test_artifact_matches_source(self, committed, extracted):
        fresh = json.loads(render(ROOT))
        if fresh == committed:
            return
        # Make the failure actionable: distinguish "layout changed without
        # a version bump" (fix the code or bump the spec version) from a
        # stale-but-legitimate artifact (regen and commit).
        problems = []
        for name in sorted(set(committed["grammars"]) | set(fresh["grammars"])):
            old = committed["grammars"].get(name)
            new = fresh["grammars"].get(name)
            if old is None or new is None:
                problems.append(f"{name}: codec grammar added/removed")
                continue
            if old["fingerprint"] != new["fingerprint"]:
                if old["version"] == new["version"]:
                    problems.append(
                        f"{name}: frame layout changed WITHOUT a version "
                        "bump — bump the FrameSpec version byte before "
                        "regenerating the artifact"
                    )
                else:
                    problems.append(
                        f"{name}: layout changed with a version bump — "
                        "regenerate via `python -m repro.tools.regen_grammars`"
                    )
            elif old != new:
                problems.append(
                    f"{name}: metadata drift (stage table / display / "
                    "spec site) — regenerate the artifact"
                )
        raise AssertionError(
            "results/frame_grammars.json is stale:\n  " + "\n  ".join(problems)
        )

    def test_every_registered_codec_has_a_grammar(self, committed):
        grammars = committed["grammars"]
        missing = [c for c in available_codecs() if c not in grammars]
        assert not missing, f"registered codecs without a grammar: {missing}"

    def test_graph_presets_carry_stage_tables(self, committed):
        presets = [n for n in committed["grammars"] if n.startswith("graph-")]
        assert len(presets) == 5
        for name in presets:
            rows = committed["grammars"][name]["stage_table"]
            assert rows, f"{name} has an empty stage table"
            for row in rows:
                assert isinstance(row["stage_id"], int), row
                assert isinstance(row["params"], list), row


class TestFingerprintSemantics:
    """The fingerprint must trip on layout changes and *only* on them."""

    def _grammar(self, extracted, name) -> FrameGrammar:
        return extracted.grammars[name]

    def test_width_mutation_changes_fingerprint(self, extracted):
        for name, grammar in extracted.grammars.items():
            baseline = grammar.fingerprint
            for position, fld in enumerate(grammar.fields):
                if "width" not in fld or fld["name"] == "body":
                    continue
                mutated = copy.deepcopy(grammar.fields)
                mutated[position]["width"] = fld["width"] + 1
                clone = FrameGrammar(
                    codec=grammar.codec,
                    spec=grammar.spec,
                    display=grammar.display,
                    version=grammar.version,
                    fields=mutated,
                    stage_table=grammar.stage_table,
                )
                assert clone.fingerprint != baseline, (
                    f"{name}: widening field {fld['name']!r} did not "
                    "change the layout fingerprint"
                )

    def test_field_reorder_changes_fingerprint(self, extracted):
        grammar = extracted.grammars["zstd"]
        swapped = copy.deepcopy(grammar.fields)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        clone = FrameGrammar(
            codec=grammar.codec,
            spec=grammar.spec,
            display=grammar.display,
            version=grammar.version,
            fields=swapped,
        )
        assert clone.fingerprint != grammar.fingerprint

    def test_varint_max_bits_changes_fingerprint(self, extracted):
        grammar = extracted.grammars["snappy"]
        mutated = copy.deepcopy(grammar.fields)
        for fld in mutated:
            if fld["kind"] == "varint":
                fld["max_bits"] = 64
        clone = FrameGrammar(
            codec=grammar.codec,
            spec=grammar.spec,
            display=grammar.display,
            version=grammar.version,
            fields=mutated,
        )
        assert clone.fingerprint != grammar.fingerprint

    def test_version_bump_alone_keeps_fingerprint(self, extracted):
        """A version bump must NOT perturb the layout fingerprint — it is
        the sanctioned escape hatch for layout changes, not one itself."""
        grammar = extracted.grammars["zstd"]
        bumped = copy.deepcopy(grammar.fields)
        for fld in bumped:
            if fld["name"] == "version":
                fld["value"] = fld["value"] + 1
        clone = FrameGrammar(
            codec=grammar.codec,
            spec=grammar.spec,
            display=grammar.display,
            version=(grammar.version or 0) + 1,
            fields=bumped,
        )
        assert clone.fingerprint == grammar.fingerprint


class TestGrammarShape:
    def test_header_bytes_are_pre_varint_fixed_widths(self, committed):
        for name, grammar in committed["grammars"].items():
            total = 0
            for fld in grammar["fields"]:
                if fld["kind"] == "varint" or fld["name"] in ("body", "stage_table"):
                    break
                total += fld.get("width") or 0
            assert grammar["header_bytes"] == total, name

    def test_known_layout_anchors(self, committed):
        """Spot anchors against the shipped formats; a failure here means
        the extractor regressed, not that the formats moved."""
        grammars = committed["grammars"]
        assert grammars["snappy"]["header_bytes"] == 0
        assert grammars["zstd"]["header_bytes"] == 6
        assert grammars["zstd"]["version"] == 2
        assert [f["name"] for f in grammars["zstd-dict"]["fields"]] == [
            "magic",
            "version",
            "window_log",
            "extra",
            "content_length",
            "body",
            "checksum",
        ]
        assert grammars["graph-delta-fse"]["stage_table"] == [
            {"stage": "delta", "stage_id": 1, "params": [1]},
            {"stage": "fse", "stage_id": 18, "params": []},
        ]
