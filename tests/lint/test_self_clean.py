"""Tier-1 gate: the repository lints clean against its own baseline.

This is the self-hosting check the whole subsystem exists for — every rule
runs over ``src/`` in strict mode (warnings gate too), and the only
tolerated findings are the justified entries in ``.repro-lint-baseline.json``.
"""

from pathlib import Path

from repro.lint import load_baseline, run_lint
from repro.lint.cli import main
from repro.lint.findings import Severity

ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_in_strict_mode(capsys):
    assert main([str(ROOT / "src"), "--strict"]) == 0, capsys.readouterr().out


def test_no_unbaselined_findings_at_any_severity():
    result = run_lint([ROOT / "src"], root=ROOT)
    baseline = load_baseline(ROOT / ".repro-lint-baseline.json")
    new, _, stale = baseline.partition(result.findings)
    assert [f.render() for f in new] == []
    assert [e.key for e in stale] == []


def test_whole_repo_scan_covers_the_codebase():
    result = run_lint([ROOT / "src"], root=ROOT)
    # The package is ~90 modules; a collapsed discovery would be a lint bug.
    assert result.files_checked > 80


def test_tests_tree_parses_cleanly():
    """Rules mostly exempt tests, but every test file must still parse."""
    result = run_lint([ROOT / "tests"], root=ROOT)
    assert [f.render() for f in result.findings if f.rule == "R000"] == []


def test_baseline_entries_all_error_or_warning():
    baseline = load_baseline(ROOT / ".repro-lint-baseline.json")
    result = run_lint([ROOT / "src"], root=ROOT)
    _, grandfathered, _ = baseline.partition(result.findings)
    assert all(f.severity >= Severity.WARNING for f in grandfathered)
