"""Engine behaviour: suppressions, parse failures, discovery, rendering."""

import pytest

from repro.lint import Severity, run_lint
from repro.lint.findings import Finding


class TestSuppressions:
    def test_blanket_noqa_suppresses_all_rules(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "import random  # repro: noqa\n",
        )
        result = project.lint("src")
        assert result.findings == []
        assert result.suppressed == 1

    def test_targeted_noqa_suppresses_named_rule(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "import random  # repro: noqa[R001]\n",
        )
        result = project.lint("src")
        assert result.findings == []
        assert result.suppressed == 1

    def test_targeted_noqa_for_other_rule_does_not_suppress(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "import random  # repro: noqa[R003]\n",
        )
        result = project.lint("src")
        assert [f.rule for f in result.findings] == ["R001"]
        assert result.suppressed == 0

    def test_multiple_codes_in_one_marker(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "import random  # repro: noqa[R003, R001]\n",
        )
        assert project.lint("src").findings == []

    def test_noqa_only_covers_its_own_line(self, project):
        project.write(
            "src/repro/fleet/sampler.py",
            "# repro: noqa[R001]\nimport random\n",
        )
        assert [f.rule for f in project.lint("src").findings] == ["R001"]


class TestParseFailures:
    def test_syntax_error_becomes_r000_finding(self, project):
        project.write("src/repro/broken.py", "def broken(:\n")
        result = project.lint("src")
        assert [f.rule for f in result.findings] == ["R000"]
        assert result.findings[0].severity is Severity.ERROR

    def test_other_files_still_checked(self, project):
        project.write("src/repro/broken.py", "def broken(:\n")
        project.write("src/repro/fleet/sampler.py", "import random\n")
        assert sorted(f.rule for f in project.lint("src").findings) == ["R000", "R001"]


class TestDiscovery:
    def test_pycache_skipped_and_single_file_accepted(self, project):
        project.write("src/repro/__pycache__/junk.py", "import random\n")
        target = project.write("src/repro/one.py", "import random\n")
        result = run_lint([target], root=project.root)
        assert result.files_checked == 1
        assert [f.rule for f in result.findings] == ["R001"]

    def test_results_sorted_by_location(self, project):
        project.write("src/repro/b.py", "import random\n")
        project.write("src/repro/a.py", "import random\nimport random\n")
        findings = project.lint("src").findings
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/a.py", 1),
            ("src/repro/a.py", 2),
            ("src/repro/b.py", 1),
        ]

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            run_lint([])


class TestFindingRendering:
    FINDING = Finding(
        rule="R001",
        path="src/repro/x.py",
        line=3,
        col=4,
        severity=Severity.ERROR,
        message="no entropy for you",
        snippet="import random",
    )

    def test_render_is_clickable_and_complete(self):
        text = self.FINDING.render()
        assert text.startswith("src/repro/x.py:3:4: ")
        assert "R001" in text and "error" in text and "no entropy" in text

    def test_json_round_trip_fields(self):
        payload = self.FINDING.to_json()
        assert payload["rule"] == "R001"
        assert payload["severity"] == "error"
        assert payload["line"] == 3

    def test_fingerprint_stable_under_line_drift(self):
        moved = Finding(
            rule="R001",
            path="src/repro/x.py",
            line=99,
            col=0,
            severity=Severity.ERROR,
            message="no entropy for you",
            snippet="import random",
        )
        assert moved.fingerprint == self.FINDING.fingerprint

    def test_severity_parse_and_order(self):
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
