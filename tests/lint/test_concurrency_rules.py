"""Tests for the concurrency/determinism rule family (R010-R013)."""

import pytest

from repro.lint import get_rule
from repro.sanitize.selftest import PLANTED_WORKER_SOURCE


class TestR010PoolSafety:
    def test_lambda_submit_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda x: x + 1, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R010")
        assert "lambda" in finding.message
        assert finding.severity.name == "ERROR"

    def test_nested_function_target_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def work(x):
                    return x + 1
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
            """,
        )
        (finding,) = project.findings("src", rule="R010")
        assert "'work'" in finding.message

    def test_toplevel_target_clean(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x + 1

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
            """,
        )
        assert project.findings("src", rule="R010") == []

    def test_open_handle_argument_flagged_through_def_use(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(handle):
                return handle.read()

            def run(path):
                handle = open(path, "rb")
                with ProcessPoolExecutor() as pool:
                    return pool.submit(work, handle)
            """,
        )
        (finding,) = project.findings("src", rule="R010")
        assert "open file handle" in finding.message

    def test_lock_argument_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def work(lock, x):
                return x

            def run(items):
                lock = threading.Lock()
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, lock, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R010")
        assert "synchronization primitive" in finding.message

    def test_generator_function_target_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                yield x + 1

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R010")
        assert "generator function" in finding.message

    def test_multiprocessing_pool_spelling_covered(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from multiprocessing import Pool

            def run(items):
                with Pool(4) as pool:
                    return pool.map(lambda x: x, items)
            """,
        )
        assert project.findings("src", rule="R010") != []

    def test_plain_data_arguments_clean(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x, names):
                return x, names

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i, ["a", "b"]) for i in items]
            """,
        )
        assert project.findings("src", rule="R010") == []

    def test_tests_exempt(self, project):
        project.write(
            "tests/test_sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def test_pool():
                with ProcessPoolExecutor() as pool:
                    pool.submit(lambda: 1)
            """,
        )
        assert project.findings("tests", rule="R010") == []


class TestR011WorkerPurity:
    def test_direct_global_write_flagged_at_write_site(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _RESULTS = []

            def work(x):
                global _RESULTS
                _RESULTS = [x]
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R011")
        assert "_RESULTS" in finding.message
        # blame lands on the write inside ``work``, not the dispatch line
        assert finding.line == 8

    def test_transitive_write_through_callee_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _CACHE = {}

            def remember(x):
                _CACHE[x] = True

            def work(x):
                remember(x)
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R011")
        assert "_CACHE" in finding.message
        assert "remember" in finding.message  # provenance chain names the callee

    def test_mutation_method_on_module_list_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _SEEN = []

            def work(x):
                _SEEN.append(x)
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        (finding,) = project.findings("src", rule="R011")
        assert "_SEEN" in finding.message

    def test_initializer_writes_sanctioned(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _WORKER_STATE = None

            def _init_worker(payload):
                global _WORKER_STATE
                _WORKER_STATE = payload

            def work(x):
                return x

            def run(items, payload):
                with ProcessPoolExecutor(
                    initializer=_init_worker, initargs=(payload,)
                ) as pool:
                    return list(pool.map(work, items))
            """,
        )
        assert project.findings("src", rule="R011") == []

    def test_pure_worker_clean(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                local = []
                local.append(x)
                return local

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        assert project.findings("src", rule="R011") == []

    def test_unreachable_impure_function_not_flagged(self, project):
        project.write(
            "src/repro/fleet/sweep.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _STATE = []

            def impure(x):
                _STATE.append(x)

            def work(x):
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
            """,
        )
        assert project.findings("src", rule="R011") == []


class TestR012DeterminismHygiene:
    def test_unsorted_listdir_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import os

            def manifest(root):
                return [name for name in os.listdir(root)]
            """,
        )
        (finding,) = project.findings("src", rule="R012")
        assert "os.listdir" in finding.message

    def test_sorted_listdir_clean(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import os

            def manifest(root):
                return sorted(os.listdir(root))
            """,
        )
        assert project.findings("src", rule="R012") == []

    def test_path_glob_method_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            def entries(root):
                for path in root.glob("*.bin"):
                    yield path
            """,
        )
        (finding,) = project.findings("src", rule="R012")
        assert "root.glob" in finding.message

    def test_len_wrapper_is_order_safe(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import os

            def count(root):
                return len(os.listdir(root))
            """,
        )
        assert project.findings("src", rule="R012") == []

    def test_set_iteration_in_for_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            def emit(names):
                pending = {n.strip() for n in names}
                out = []
                for name in pending:
                    out.append(name)
                return out
            """,
        )
        (finding,) = project.findings("src", rule="R012")
        assert "PYTHONHASHSEED" in finding.message

    def test_sorted_set_iteration_clean(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            def emit(names):
                pending = {n.strip() for n in names}
                return [name for name in sorted(pending)]
            """,
        )
        assert project.findings("src", rule="R012") == []

    def test_set_membership_not_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            ALLOWED = {"a", "b"}

            def check(name):
                return name in ALLOWED
            """,
        )
        assert project.findings("src", rule="R012") == []

    def test_clock_value_into_cache_key_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import time

            def stamp_key(cache, payload):
                stamp = time.time()
                return cache.make_key(payload, stamp)
            """,
        )
        (finding,) = project.findings("src", rule="R012")
        assert "wall-clock" in finding.message

    def test_clock_into_json_dumps_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import json
            import time

            def report(results):
                return json.dumps({"results": results, "at": time.time()})
            """,
        )
        assert project.findings("src", rule="R012") != []

    def test_global_random_call_flagged(self, project):
        project.write(
            "src/repro/corpus/scan.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert any(
            "interpreter-global" in f.message
            for f in project.findings("src", rule="R012")
        )

    def test_planted_worker_source_detected_statically(self, project):
        """The sanitizer's planted bug must also be caught by R012."""
        project.write("src/repro/fleet/planted.py", PLANTED_WORKER_SOURCE)
        findings = project.findings("src", rule="R012")
        assert findings, "R012 missed the planted unsorted-glob worker"
        assert any("glob.glob" in f.message for f in findings)

    def test_obs_tree_exempt(self, project):
        project.write(
            "src/repro/obs/clock.py",
            """
            import time

            def snapshot_key(metrics):
                return metrics.make_key(time.time())
            """,
        )
        assert project.findings("src", rule="R012") == []


class TestR013BlockingInAsync:
    def test_time_sleep_in_async_flagged(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import time

            async def serve(request):
                time.sleep(0.1)
                return request
            """,
        )
        (finding,) = project.findings("src", rule="R013")
        assert "time.sleep" in finding.message
        assert "asyncio.sleep" in finding.message

    def test_subprocess_run_in_async_flagged(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import subprocess

            async def serve(request):
                return subprocess.run(["true"])
            """,
        )
        (finding,) = project.findings("src", rule="R013")
        assert "subprocess.run" in finding.message

    def test_import_alias_resolved(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import subprocess as sp

            async def serve(request):
                return sp.check_output(["true"])
            """,
        )
        (finding,) = project.findings("src", rule="R013")
        assert "check_output" in finding.message

    def test_bare_open_in_async_flagged(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            async def serve(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        (finding,) = project.findings("src", rule="R013")
        assert "'open(" in finding.message

    def test_sync_function_not_flagged(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import time

            def serve(request):
                time.sleep(0.1)
                return request
            """,
        )
        assert project.findings("src", rule="R013") == []

    def test_nested_sync_def_inside_async_not_flagged(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import time

            async def serve(request):
                def blocking_helper():
                    time.sleep(0.1)
                return blocking_helper
            """,
        )
        assert project.findings("src", rule="R013") == []

    def test_asyncio_sleep_clean(self, project):
        project.write(
            "src/repro/service/worker.py",
            """
            import asyncio

            async def serve(request):
                await asyncio.sleep(0.1)
                return request
            """,
        )
        assert project.findings("src", rule="R013") == []


class TestRemediationMetadata:
    @pytest.mark.parametrize("code", ["R010", "R011", "R012", "R013"])
    def test_new_rules_carry_remediation(self, code):
        assert get_rule(code).remediation
