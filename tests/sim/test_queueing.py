"""Unit tests for the service-level queueing simulation."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.sim.arrivals import CallArrival, poisson_trace
from repro.sim.queueing import ServiceModel, simulate


def _uniform_trace(count, gap, size=1000):
    return [
        CallArrival(
            arrival_time=i * gap,
            algorithm="snappy",
            operation=Operation.DECOMPRESS,
            uncompressed_bytes=size,
            compressed_bytes=size // 2,
        )
        for i in range(count)
    ]


def _flat_service(rate_bps=1e9, overhead=0.0):
    rates = {
        (a, o): rate_bps for a in ("snappy", "zstd") for o in Operation
    }
    return ServiceModel(rates=rates, per_call_seconds=overhead)


class TestArrivals:
    def test_trace_sorted_and_sized(self, fleet_profile):
        trace = poisson_trace(fleet_profile, num_calls=500)
        assert len(trace) == 500
        times = [c.arrival_time for c in trace]
        assert times == sorted(times)

    def test_offered_load_matches(self, fleet_profile):
        offered = 1.5e9
        trace = poisson_trace(fleet_profile, num_calls=4000, offered_bytes_per_second=offered)
        total_bytes = sum(c.uncompressed_bytes for c in trace)
        duration = trace[-1].arrival_time
        assert total_bytes / duration == pytest.approx(offered, rel=0.3)

    def test_algorithm_filter(self, fleet_profile):
        trace = poisson_trace(fleet_profile, num_calls=200, algorithms=["snappy"])
        assert all(c.algorithm == "snappy" for c in trace)

    def test_non_fleet_codec_borrows_call_shapes(self, fleet_profile):
        # Codecs absent from the fleet telemetry (graph presets) take a
        # proportional share of the offered calls, with sizes/operations
        # resampled from the fleet rows.
        trace = poisson_trace(
            fleet_profile,
            num_calls=400,
            algorithms=["snappy", "graph-delta-fse"],
        )
        mix = {c.algorithm for c in trace}
        assert mix == {"snappy", "graph-delta-fse"}
        share = sum(c.algorithm == "graph-delta-fse" for c in trace) / len(trace)
        assert 0.3 < share < 0.7
        only = poisson_trace(
            fleet_profile, num_calls=50, algorithms=["graph-delta-fse"]
        )
        assert all(c.algorithm == "graph-delta-fse" for c in only)

    def test_bad_load_rejected(self, fleet_profile):
        with pytest.raises(ValueError):
            poisson_trace(fleet_profile, offered_bytes_per_second=0)


class TestSimulator:
    def test_unloaded_station_has_no_waiting(self):
        # Service takes 1 us; arrivals 1 ms apart.
        trace = _uniform_trace(50, gap=1e-3, size=1000)
        result = simulate(trace, _flat_service(1e9))
        assert result.mean_waiting == pytest.approx(0.0, abs=1e-12)
        assert result.mean_sojourn == pytest.approx(1e-6, rel=1e-6)

    def test_saturated_station_queues(self):
        # Service 1 us; arrivals 0.5 us apart: queue grows linearly.
        trace = _uniform_trace(200, gap=0.5e-6, size=1000)
        result = simulate(trace, _flat_service(1e9))
        assert result.sojourn_percentile(99) > 10 * result.sojourn_percentile(1)
        assert result.utilization > 0.9

    def test_utilization_is_work_over_capacity(self):
        trace = _uniform_trace(100, gap=2e-6, size=1000)
        result = simulate(trace, _flat_service(1e9))
        expected = 100 * 1e-6 / (result.lanes * result.makespan_seconds)
        assert result.utilization == pytest.approx(expected)

    def test_littles_law_under_poisson(self, fleet_profile):
        """L = lambda * W must hold approximately for a stable station."""
        trace = poisson_trace(
            fleet_profile,
            num_calls=3000,
            offered_bytes_per_second=1.0e9,
            seed=4,
            algorithms=["snappy", "zstd"],
        )
        result = simulate(trace, _flat_service(4e9), lanes=1)
        lam = len(trace) / trace[-1].arrival_time
        mean_in_system = lam * result.mean_sojourn
        # Time-average number in system, measured by integrating sojourns.
        integral = result.sojourn_seconds.sum() / result.makespan_seconds
        assert mean_in_system == pytest.approx(integral, rel=0.15)

    def test_more_lanes_cut_tail_latency(self):
        trace = _uniform_trace(300, gap=0.6e-6, size=1000)
        one = simulate(trace, _flat_service(1e9), lanes=1)
        four = simulate(trace, _flat_service(1e9), lanes=4)
        assert four.sojourn_percentile(99) < one.sojourn_percentile(99) / 2
        assert four.utilization < one.utilization

    def test_per_call_overhead_dominates_small_calls(self):
        trace = _uniform_trace(20, gap=1.0, size=100)
        cheap = simulate(trace, _flat_service(1e9, overhead=0.0))
        pricey = simulate(trace, _flat_service(1e9, overhead=1e-3))
        assert pricey.mean_sojourn > 100 * cheap.mean_sojourn

    def test_empty_trace_is_a_valid_zero_run(self):
        """Regression: an empty trace used to raise; now it is a total,
        NaN-free zero-call result (saturation sweeps can produce one)."""
        result = simulate([], _flat_service())
        assert result.num_calls == 0
        assert result.utilization == 0.0
        assert result.mean_sojourn == 0.0
        assert result.mean_waiting == 0.0
        assert result.sojourn_percentile(50) == 0.0
        assert result.sojourn_percentile(99) == 0.0
        for value in (
            result.utilization,
            result.mean_sojourn,
            result.mean_waiting,
            result.makespan_seconds,
        ):
            assert not np.isnan(value)
        assert "nan" not in result.summary("empty")

    def test_bad_lanes_rejected(self):
        with pytest.raises(ValueError):
            simulate(_uniform_trace(5, 1.0), _flat_service(), lanes=0)

    def test_missing_rate_raises(self):
        service = ServiceModel(rates={}, per_call_seconds=0.0)
        with pytest.raises(KeyError):
            simulate(_uniform_trace(1, 1.0), service)

    @pytest.mark.parametrize("bad_rate", [0.0, -1.0, float("nan"), float("inf")])
    def test_degenerate_rate_rejected_at_construction(self, bad_rate):
        """Regression: a zero/negative/non-finite rate used to surface as a
        ZeroDivisionError (or silent nonsense) mid-simulation."""
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="snappy"):
            ServiceModel(
                rates={("snappy", Operation.DECOMPRESS): bad_rate},
                per_call_seconds=0.0,
            )

    @pytest.mark.parametrize("bad_overhead", [-1e-6, float("nan"), float("inf")])
    def test_degenerate_overhead_rejected_at_construction(self, bad_overhead):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="per_call_seconds"):
            ServiceModel(rates={}, per_call_seconds=bad_overhead)


class TestConservationProperties:
    """Structural invariants that must hold on any trace/service pairing."""

    def _traces(self, fleet_profile):
        yield _uniform_trace(100, gap=1e-6, size=1000)
        yield _uniform_trace(1, gap=1.0, size=10)
        yield poisson_trace(fleet_profile, num_calls=400, seed=9)

    def _service(self):
        rates = {
            (a, o): 1e9 for a in ("snappy", "zstd", "flate", "brotli", "gipfeli", "lzo")
            for o in Operation
        }
        return ServiceModel(rates=rates, per_call_seconds=1e-7)

    def test_time_conservation(self, fleet_profile):
        """sojourn >= service >= 0 and waiting == sojourn - service, per call."""
        service = self._service()
        for trace in self._traces(fleet_profile):
            result = simulate(trace, service, lanes=2)
            services = np.array([service.service_seconds(c) for c in trace])
            assert np.all(result.waiting_seconds >= 0.0)
            assert np.all(result.sojourn_seconds >= services - 1e-15)
            np.testing.assert_allclose(
                result.sojourn_seconds - result.waiting_seconds,
                services,
                rtol=1e-12,
                atol=1e-15,
            )

    def test_utilization_bounded(self, fleet_profile):
        for trace in self._traces(fleet_profile):
            for lanes in (1, 2, 4):
                result = simulate(trace, self._service(), lanes=lanes)
                assert 0.0 <= result.utilization <= 1.0 + 1e-12

    def test_more_lanes_never_increase_mean_waiting(self, fleet_profile):
        """On a fixed trace, mean waiting is monotonically non-increasing in
        the lane count: extra FIFO capacity can only start calls earlier."""
        trace = poisson_trace(fleet_profile, num_calls=600, seed=3)
        service = self._service()
        waits = [
            simulate(trace, service, lanes=lanes).mean_waiting
            for lanes in (1, 2, 3, 4, 8)
        ]
        for tighter, looser in zip(waits[1:], waits[:-1]):
            assert tighter <= looser + 1e-12


class TestMeasuredReplay:
    """The ``service_times`` replay mode added for service sim-validation."""

    def test_replay_matches_equivalent_model(self):
        """Explicit per-call times equal to the model's must reproduce the
        model-driven run exactly."""
        trace = _uniform_trace(50, gap=1e-6, size=1000)
        service = _flat_service(1e9)
        times = [service.service_seconds(c) for c in trace]
        modeled = simulate(trace, service, lanes=2)
        replayed = simulate(trace, None, lanes=2, service_times=times)
        np.testing.assert_allclose(replayed.sojourn_seconds, modeled.sojourn_seconds)
        np.testing.assert_allclose(replayed.waiting_seconds, modeled.waiting_seconds)
        assert replayed.utilization == pytest.approx(modeled.utilization)

    def test_replay_takes_precedence_over_model(self):
        trace = _uniform_trace(10, gap=1.0, size=1000)
        replayed = simulate(
            trace, _flat_service(1e9), service_times=[0.5] * len(trace)
        )
        assert replayed.mean_sojourn == pytest.approx(0.5)

    def test_misaligned_times_rejected(self):
        from repro.common.errors import ConfigError

        trace = _uniform_trace(5, gap=1.0)
        with pytest.raises(ConfigError, match="align"):
            simulate(trace, None, service_times=[1e-6] * 4)

    def test_neither_model_nor_times_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="ServiceModel or explicit"):
            simulate(_uniform_trace(3, gap=1.0), None)


class TestFittedModels:
    """``ServiceModel.from_measurements`` — fitting rates from live timings."""

    def test_fit_recovers_a_flat_rate(self):
        samples = [
            ("snappy", Operation.DECOMPRESS, 1000, 1e-6),
            ("snappy", Operation.DECOMPRESS, 2000, 2e-6),
            ("snappy", Operation.COMPRESS, 4000, 8e-6),
        ]
        model = ServiceModel.from_measurements(samples)
        assert model.rates[("snappy", Operation.DECOMPRESS)] == pytest.approx(1e9)
        assert model.rates[("snappy", Operation.COMPRESS)] == pytest.approx(5e8)
        call = CallArrival(0.0, "snappy", Operation.DECOMPRESS, 3000, 1500)
        assert model.service_seconds(call) == pytest.approx(3e-6)

    def test_fit_deducts_per_call_overhead(self):
        samples = [("snappy", Operation.DECOMPRESS, 1000, 2e-6)]
        model = ServiceModel.from_measurements(samples, per_call_seconds=1e-6)
        assert model.rates[("snappy", Operation.DECOMPRESS)] == pytest.approx(1e9)
        assert model.per_call_seconds == pytest.approx(1e-6)

    def test_empty_samples_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="zero samples"):
            ServiceModel.from_measurements([])

    def test_degenerate_samples_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="degenerate"):
            ServiceModel.from_measurements(
                [("snappy", Operation.DECOMPRESS, 1000, 0.0)]
            )


class TestServiceModels:
    def test_software_baseline_uses_paper_anchors(self):
        service = ServiceModel.software_baseline()
        call = CallArrival(0.0, "snappy", Operation.DECOMPRESS, 1_100_000, 500_000)
        # 1.1 MB at 1.1 GB/s = ~1 ms plus small overhead.
        assert service.service_seconds(call) == pytest.approx(1e-3, rel=0.05)

    def test_dse_model_faster_than_software(self, dse_runner):
        from repro.core.params import CdpuConfig

        accel = ServiceModel.from_dse(dse_runner, CdpuConfig())
        software = ServiceModel.software_baseline()
        call = CallArrival(0.0, "snappy", Operation.DECOMPRESS, 100_000, 50_000)
        assert accel.service_seconds(call) < software.service_seconds(call) / 5
