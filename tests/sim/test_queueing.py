"""Unit tests for the service-level queueing simulation."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.sim.arrivals import CallArrival, poisson_trace
from repro.sim.queueing import ServiceModel, simulate


def _uniform_trace(count, gap, size=1000):
    return [
        CallArrival(
            arrival_time=i * gap,
            algorithm="snappy",
            operation=Operation.DECOMPRESS,
            uncompressed_bytes=size,
            compressed_bytes=size // 2,
        )
        for i in range(count)
    ]


def _flat_service(rate_bps=1e9, overhead=0.0):
    rates = {
        (a, o): rate_bps for a in ("snappy", "zstd") for o in Operation
    }
    return ServiceModel(rates=rates, per_call_seconds=overhead)


class TestArrivals:
    def test_trace_sorted_and_sized(self, fleet_profile):
        trace = poisson_trace(fleet_profile, num_calls=500)
        assert len(trace) == 500
        times = [c.arrival_time for c in trace]
        assert times == sorted(times)

    def test_offered_load_matches(self, fleet_profile):
        offered = 1.5e9
        trace = poisson_trace(fleet_profile, num_calls=4000, offered_bytes_per_second=offered)
        total_bytes = sum(c.uncompressed_bytes for c in trace)
        duration = trace[-1].arrival_time
        assert total_bytes / duration == pytest.approx(offered, rel=0.3)

    def test_algorithm_filter(self, fleet_profile):
        trace = poisson_trace(fleet_profile, num_calls=200, algorithms=["snappy"])
        assert all(c.algorithm == "snappy" for c in trace)

    def test_bad_load_rejected(self, fleet_profile):
        with pytest.raises(ValueError):
            poisson_trace(fleet_profile, offered_bytes_per_second=0)


class TestSimulator:
    def test_unloaded_station_has_no_waiting(self):
        # Service takes 1 us; arrivals 1 ms apart.
        trace = _uniform_trace(50, gap=1e-3, size=1000)
        result = simulate(trace, _flat_service(1e9))
        assert result.mean_waiting == pytest.approx(0.0, abs=1e-12)
        assert result.mean_sojourn == pytest.approx(1e-6, rel=1e-6)

    def test_saturated_station_queues(self):
        # Service 1 us; arrivals 0.5 us apart: queue grows linearly.
        trace = _uniform_trace(200, gap=0.5e-6, size=1000)
        result = simulate(trace, _flat_service(1e9))
        assert result.sojourn_percentile(99) > 10 * result.sojourn_percentile(1)
        assert result.utilization > 0.9

    def test_utilization_is_work_over_capacity(self):
        trace = _uniform_trace(100, gap=2e-6, size=1000)
        result = simulate(trace, _flat_service(1e9))
        expected = 100 * 1e-6 / (result.lanes * result.makespan_seconds)
        assert result.utilization == pytest.approx(expected)

    def test_littles_law_under_poisson(self, fleet_profile):
        """L = lambda * W must hold approximately for a stable station."""
        trace = poisson_trace(
            fleet_profile,
            num_calls=3000,
            offered_bytes_per_second=1.0e9,
            seed=4,
            algorithms=["snappy", "zstd"],
        )
        result = simulate(trace, _flat_service(4e9), lanes=1)
        lam = len(trace) / trace[-1].arrival_time
        mean_in_system = lam * result.mean_sojourn
        # Time-average number in system, measured by integrating sojourns.
        integral = result.sojourn_seconds.sum() / result.makespan_seconds
        assert mean_in_system == pytest.approx(integral, rel=0.15)

    def test_more_lanes_cut_tail_latency(self):
        trace = _uniform_trace(300, gap=0.6e-6, size=1000)
        one = simulate(trace, _flat_service(1e9), lanes=1)
        four = simulate(trace, _flat_service(1e9), lanes=4)
        assert four.sojourn_percentile(99) < one.sojourn_percentile(99) / 2
        assert four.utilization < one.utilization

    def test_per_call_overhead_dominates_small_calls(self):
        trace = _uniform_trace(20, gap=1.0, size=100)
        cheap = simulate(trace, _flat_service(1e9, overhead=0.0))
        pricey = simulate(trace, _flat_service(1e9, overhead=1e-3))
        assert pricey.mean_sojourn > 100 * cheap.mean_sojourn

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate([], _flat_service())

    def test_bad_lanes_rejected(self):
        with pytest.raises(ValueError):
            simulate(_uniform_trace(5, 1.0), _flat_service(), lanes=0)

    def test_missing_rate_raises(self):
        service = ServiceModel(rates={}, per_call_seconds=0.0)
        with pytest.raises(KeyError):
            simulate(_uniform_trace(1, 1.0), service)


class TestServiceModels:
    def test_software_baseline_uses_paper_anchors(self):
        service = ServiceModel.software_baseline()
        call = CallArrival(0.0, "snappy", Operation.DECOMPRESS, 1_100_000, 500_000)
        # 1.1 MB at 1.1 GB/s = ~1 ms plus small overhead.
        assert service.service_seconds(call) == pytest.approx(1e-3, rel=0.05)

    def test_dse_model_faster_than_software(self, dse_runner):
        from repro.core.params import CdpuConfig

        accel = ServiceModel.from_dse(dse_runner, CdpuConfig())
        software = ServiceModel.software_baseline()
        call = CallArrival(0.0, "snappy", Operation.DECOMPRESS, 100_000, 50_000)
        assert accel.service_seconds(call) < software.service_seconds(call) / 5
