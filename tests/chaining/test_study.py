"""Tests for the §3.5.2 accelerator-chaining study."""

import pytest

from repro.chaining import RPC_LOG_SCHEMA, chaining_study, render_study, run_chain, sample_records
from repro.soc.placement import Placement


@pytest.fixture(scope="module")
def results():
    return chaining_study(RPC_LOG_SCHEMA, sample_records(0, 250))


class TestChainScenarios:
    def test_near_core_chain_beats_software_by_a_lot(self, results):
        software = results["software"].total_cycles
        near = results[Placement.ROCC.value].total_cycles
        assert software / near > 5

    def test_pcie_chain_loses_most_of_the_benefit(self, results):
        """§3.5.2: crossing PCIe incurs 'substantial offload overhead
        multiple times, making the use of each accelerator less attractive'."""
        near = results[Placement.ROCC.value].total_cycles
        pcie = results[Placement.PCIE_NO_CACHE.value].total_cycles
        assert pcie / near > 3

    def test_pcie_chain_still_beats_software(self, results):
        assert results[Placement.PCIE_NO_CACHE.value].total_cycles < results["software"].total_cycles

    def test_near_core_has_no_intermediate_transfer(self, results):
        """§3.8 lesson 4b: the L2 is the intermediate storage near-core."""
        assert results[Placement.ROCC.value].transfer_cycles == 0.0
        assert results[Placement.PCIE_NO_CACHE.value].transfer_cycles > 0.0

    def test_chiplet_is_the_middle_ground(self, results):
        near = results[Placement.ROCC.value].total_cycles
        chiplet = results[Placement.CHIPLET.value].total_cycles
        pcie = results[Placement.PCIE_NO_CACHE.value].total_cycles
        assert near < chiplet < pcie

    def test_all_scenarios_process_identical_data(self, results):
        wire = {r.wire_bytes for r in results.values()}
        assert len(wire) == 1  # same functional work everywhere

    def test_render(self, results):
        text = render_study(results)
        assert "serialize" in text and "GB/s" in text


class TestRunChain:
    def test_software_serializer_flag(self):
        records = sample_records(1, 60)
        hw = run_chain(RPC_LOG_SCHEMA, records, placement=Placement.ROCC)
        sw = run_chain(
            RPC_LOG_SCHEMA, records, placement=Placement.ROCC, software_serializer=True
        )
        assert sw.serialize_cycles > 5 * hw.serialize_cycles

    def test_snappy_chain_supported(self):
        records = sample_records(2, 60)
        result = run_chain(
            RPC_LOG_SCHEMA, records, placement=Placement.ROCC, algorithm="snappy"
        )
        assert result.compressed_bytes < result.wire_bytes

    def test_bookkeeping_always_charged(self):
        """§3.5.2: 'small, unrelated book-keeping operations between the two
        accelerated operations' stay on the CPU in every scenario."""
        records = sample_records(3, 30)
        for placement in (Placement.ROCC, Placement.PCIE_NO_CACHE):
            result = run_chain(RPC_LOG_SCHEMA, records, placement=placement)
            assert result.bookkeeping_cycles > 0
