"""Unit tests for the protobuf-like serializer substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaining.protobuf import (
    RPC_LOG_SCHEMA,
    FieldSpec,
    MessageSchema,
    WireType,
    decode_message,
    decode_record_batch,
    encode_message,
    encode_record_batch,
    sample_records,
)
from repro.common.errors import CorruptStreamError


class TestSchema:
    def test_duplicate_field_numbers_rejected(self):
        with pytest.raises(ValueError):
            MessageSchema("m", (FieldSpec(1, WireType.VARINT, "a"), FieldSpec(1, WireType.VARINT, "b")))

    def test_field_number_range(self):
        with pytest.raises(ValueError):
            FieldSpec(0, WireType.VARINT, "x")


class TestEncodeDecode:
    def test_roundtrip_full_record(self):
        record = {
            "timestamp_us": 1_700_000_000_000_000,
            "user_id": 42,
            "method": b"/storage.Read",
            "status": 0,
            "latency_us": 812,
            "payload": b"abcabc",
            "shard": 7,
        }
        blob = encode_message(RPC_LOG_SCHEMA, record)
        assert decode_message(RPC_LOG_SCHEMA, blob) == record

    def test_missing_fields_skipped(self):
        blob = encode_message(RPC_LOG_SCHEMA, {"user_id": 1})
        decoded = decode_message(RPC_LOG_SCHEMA, blob)
        assert decoded == {"user_id": 1}

    def test_unknown_key_rejected_on_encode(self):
        with pytest.raises(KeyError):
            encode_message(RPC_LOG_SCHEMA, {"nope": 1})

    def test_string_values_encoded_as_bytes(self):
        blob = encode_message(RPC_LOG_SCHEMA, {"method": "/x.Y"})
        assert decode_message(RPC_LOG_SCHEMA, blob)["method"] == b"/x.Y"

    def test_unknown_fields_skipped_on_decode(self):
        wide = MessageSchema(
            "wide", (FieldSpec(1, WireType.VARINT, "a"), FieldSpec(9, WireType.VARINT, "z"))
        )
        narrow = MessageSchema("narrow", (FieldSpec(1, WireType.VARINT, "a"),))
        blob = encode_message(wide, {"a": 5, "z": 6})
        assert decode_message(narrow, blob) == {"a": 5}

    def test_wire_type_mismatch_rejected(self):
        a = MessageSchema("a", (FieldSpec(1, WireType.VARINT, "x"),))
        b = MessageSchema("b", (FieldSpec(1, WireType.FIXED32, "x"),))
        blob = encode_message(a, {"x": 3})
        with pytest.raises(CorruptStreamError):
            decode_message(b, blob)

    def test_truncated_fixed_field_rejected(self):
        schema = MessageSchema("f", (FieldSpec(1, WireType.FIXED64, "x"),))
        blob = encode_message(schema, {"x": 1})
        with pytest.raises(CorruptStreamError):
            decode_message(schema, blob[:-3])

    def test_overrunning_length_delimited_rejected(self):
        schema = MessageSchema("s", (FieldSpec(1, WireType.LENGTH_DELIMITED, "x"),))
        blob = encode_message(schema, {"x": b"hello"})
        with pytest.raises(CorruptStreamError):
            decode_message(schema, blob[:-2])

    def test_canonical_field_order(self):
        blob_a = encode_message(RPC_LOG_SCHEMA, {"user_id": 1, "status": 2})
        blob_b = encode_message(RPC_LOG_SCHEMA, {"status": 2, "user_id": 1})
        assert blob_a == blob_b


class TestBatches:
    def test_batch_roundtrip(self):
        records = sample_records(3, 40)
        blob = encode_record_batch(RPC_LOG_SCHEMA, records)
        assert decode_record_batch(RPC_LOG_SCHEMA, blob) == records

    def test_batch_truncation_rejected(self):
        blob = encode_record_batch(RPC_LOG_SCHEMA, sample_records(3, 10))
        with pytest.raises(CorruptStreamError):
            decode_record_batch(RPC_LOG_SCHEMA, blob[:-2])

    def test_sample_records_deterministic(self):
        assert sample_records(7, 5) == sample_records(7, 5)

    def test_batches_are_compressible(self):
        """The §3.5.2 premise: serialized record batches compress well."""
        from repro.algorithms.registry import get_codec

        blob = encode_record_batch(RPC_LOG_SCHEMA, sample_records(1, 400))
        ratio = len(blob) / len(get_codec("zstd").compress(blob))
        assert ratio > 1.5


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["timestamp_us", "user_id", "status", "latency_us"]),
        st.integers(0, (1 << 63) - 1),
        max_size=4,
    )
)
def test_varint_fields_roundtrip(values):
    blob = encode_message(RPC_LOG_SCHEMA, values)
    assert decode_message(RPC_LOG_SCHEMA, blob) == values
