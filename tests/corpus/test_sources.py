"""Unit tests for the synthetic corpus sources and chunker."""

import pytest

from repro.algorithms.snappy import SnappyCodec
from repro.corpus.chunker import Chunk, chunk_corpus
from repro.corpus.sources import DOMAIN_SOURCES, SOURCES, build_corpus


class TestSources:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_exact_size(self, name):
        data = SOURCES[name](3, 10_000)
        assert len(data) == 10_000

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_deterministic(self, name):
        assert SOURCES[name](42, 5000) == SOURCES[name](42, 5000)

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_seed_sensitivity(self, name):
        if name == "dna":
            pytest.skip("dna content varies but trivially; covered elsewhere")
        assert SOURCES[name](1, 5000) != SOURCES[name](2, 5000)

    def test_compressibility_spectrum(self):
        """The chunk pool must span ratios ~1 to >4 for the ratio LUT (§4)."""
        codec = SnappyCodec()
        ratios = {
            name: len(fn(0, 16384)) / len(codec.compress(fn(0, 16384)))
            for name, fn in SOURCES.items()
        }
        assert ratios["random"] < 1.1
        assert ratios["repetitive"] > 4.0
        assert ratios["log"] > 2.0
        assert min(ratios.values()) < 1.1 < 2.0 < max(ratios.values())

    def test_text_is_ascii_words(self):
        data = SOURCES["text"](5, 2000)
        assert all(32 <= b < 127 for b in data)

    def test_log_lines_newline_terminated(self):
        data = SOURCES["log"](5, 4000)
        assert data.count(b"\n") > 10

    def test_json_records_parse(self):
        import json

        data = SOURCES["json"](5, 8000)
        lines = data.split(b"\n")
        parsed = 0
        for line in lines[:-1]:  # last line may be cut by size trimming
            json.loads(line)
            parsed += 1
        assert parsed >= 5

    def test_dna_alphabet(self):
        data = SOURCES["dna"](5, 3000)
        assert set(data) <= set(b"ACGT")


class TestDomainSources:
    """FCBench-style float/columnar workloads for the graph sweep."""

    @pytest.mark.parametrize("name", sorted(DOMAIN_SOURCES))
    def test_exact_size(self, name):
        assert len(DOMAIN_SOURCES[name](3, 10_000)) == 10_000

    @pytest.mark.parametrize("name", sorted(DOMAIN_SOURCES))
    def test_deterministic(self, name):
        assert DOMAIN_SOURCES[name](42, 5000) == DOMAIN_SOURCES[name](42, 5000)

    @pytest.mark.parametrize("name", sorted(DOMAIN_SOURCES))
    def test_seed_sensitivity(self, name):
        assert DOMAIN_SOURCES[name](1, 5000) != DOMAIN_SOURCES[name](2, 5000)

    def test_domain_sources_stay_out_of_classic_set(self):
        # The hcbench LUTs and committed DSE artifacts derive from SOURCES;
        # domain workloads must not silently shift those distributions.
        assert not set(DOMAIN_SOURCES) & set(SOURCES)

    def test_float_timeseries_is_valid_f64(self):
        import numpy as np

        data = DOMAIN_SOURCES["float_timeseries"](7, 8000)
        values = np.frombuffer(data, dtype="<f8")
        assert np.isfinite(values).all()
        # Quantized smooth walk: consecutive deltas are small and lie on
        # the 2**-10 grid.
        deltas = np.diff(values)
        assert np.abs(deltas).max() < 50.0
        assert np.allclose(values * 1024, np.round(values * 1024))

    def test_columnar_records_have_ascending_id_column(self):
        import numpy as np

        data = DOMAIN_SOURCES["columnar_records"](7, 21 * 256 * 2)
        ids = np.frombuffer(data[: 8 * 256], dtype="<u8")
        assert (np.diff(ids.astype(np.int64)) == 1).all()

    def test_plane_graph_beats_monolithic_on_floats(self):
        # The property the graph DSE sweep rests on, pinned as a unit test.
        from repro.algorithms.registry import get_codec

        data = DOMAIN_SOURCES["float_timeseries"](11, 12_000)
        graph = len(get_codec("graph-plane-fse").compress(data))
        zstd = len(get_codec("zstd").compress(data))
        assert graph < zstd


class TestBuildCorpus:
    def test_one_file_per_source(self):
        corpus = build_corpus(0, 4096)
        assert set(corpus) == {f"{n}-0" for n in SOURCES}

    def test_files_per_source(self):
        corpus = build_corpus(0, 1024, files_per_source=3)
        assert len(corpus) == 3 * len(SOURCES)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            build_corpus(0, 0)


class TestChunker:
    def test_chunk_sizes_uniform(self):
        corpus = {"a": bytes(10_000)}
        chunks = chunk_corpus(corpus, 1024)
        assert len(chunks) == 9
        assert all(len(c.data) == 1024 for c in chunks)

    def test_partial_tail_kept_when_asked(self):
        chunks = chunk_corpus({"a": bytes(2500)}, 1024, drop_partial=False)
        assert [len(c.data) for c in chunks] == [1024, 1024, 452]

    def test_chunk_ids_unique(self):
        corpus = build_corpus(1, 8192)
        chunks = chunk_corpus(corpus, 1024)
        ids = [c.chunk_id for c in chunks]
        assert len(ids) == len(set(ids))

    def test_provenance(self):
        chunks = chunk_corpus({"source-x": bytes(4096)}, 1024)
        assert all(c.source_file == "source-x" for c in chunks)
        assert [c.index for c in chunks] == [0, 1, 2, 3]

    def test_deterministic_order(self):
        corpus = {"b": bytes(2048), "a": bytes(2048)}
        chunks = chunk_corpus(corpus, 1024)
        assert [c.source_file for c in chunks] == ["a", "a", "b", "b"]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_corpus({}, 0)
