"""Unit tests for the §3.3 what-if / resource-trade-off model."""

import pytest

from repro.fleet.whatif import ResourceWeights, migration_what_if


class TestMigrationScenario:
    def test_full_adoption_hits_target_ratio(self, fleet_profile):
        report = migration_what_if(fleet_profile)
        # Almost all compression traffic migrates to the high bin (3.94x);
        # the residue (already-high calls) keeps it a touch below/above.
        assert report.accelerated.aggregate_ratio == pytest.approx(3.94, rel=0.05)

    def test_baseline_matches_fleet_aggregate(self, fleet_profile):
        report = migration_what_if(fleet_profile)
        # Fleet-wide aggregate (Figure 2c blend) sits between Snappy's 2.0
        # and the heavyweight bins.
        assert 2.0 < report.baseline.aggregate_ratio < 3.0

    def test_bytes_and_cycles_both_shrink(self, fleet_profile):
        report = migration_what_if(fleet_profile)
        assert report.compressed_byte_reduction > 0.3
        assert report.cpu_cycle_reduction > 0.5
        assert report.cost_reduction > 0.0

    def test_zero_adoption_is_identity(self, fleet_profile):
        report = migration_what_if(fleet_profile, adoption=0.0)
        assert report.compressed_byte_reduction == pytest.approx(0.0, abs=1e-9)
        assert report.cpu_cycle_reduction == pytest.approx(0.0, abs=1e-9)

    def test_adoption_monotone(self, fleet_profile):
        quarter = migration_what_if(fleet_profile, adoption=0.25)
        half = migration_what_if(fleet_profile, adoption=0.5)
        full = migration_what_if(fleet_profile, adoption=1.0)
        assert (
            quarter.compressed_byte_reduction
            < half.compressed_byte_reduction
            < full.compressed_byte_reduction
        )

    def test_bad_adoption_rejected(self, fleet_profile):
        with pytest.raises(ValueError):
            migration_what_if(fleet_profile, adoption=1.5)

    def test_custom_ratio_target(self, fleet_profile):
        modest = migration_what_if(fleet_profile, accelerated_ratio=2.5)
        aggressive = migration_what_if(fleet_profile, accelerated_ratio=5.0)
        assert aggressive.compressed_byte_reduction > modest.compressed_byte_reduction

    def test_expensive_offload_reduces_cycle_savings(self, fleet_profile):
        cheap = migration_what_if(fleet_profile, cdpu_cycles_per_byte=0.1)
        costly = migration_what_if(fleet_profile, cdpu_cycles_per_byte=3.0)
        assert cheap.cpu_cycle_reduction > costly.cpu_cycle_reduction

    def test_weights_shift_cost_but_not_physics(self, fleet_profile):
        storage_heavy = migration_what_if(
            fleet_profile, weights=ResourceWeights(stored_byte=500.0)
        )
        cycle_heavy = migration_what_if(
            fleet_profile, weights=ResourceWeights(cpu_cycle=100.0, stored_byte=0.1, network_byte=0.1, memory_byte=0.1)
        )
        assert storage_heavy.compressed_byte_reduction == pytest.approx(
            cycle_heavy.compressed_byte_reduction
        )
        assert storage_heavy.cost_reduction != pytest.approx(cycle_heavy.cost_reduction)

    def test_report_renders(self, fleet_profile):
        text = migration_what_if(fleet_profile).render()
        assert "aggregate ratio" in text and "reduction" in text
