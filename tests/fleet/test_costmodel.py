"""Unit tests for the §3.3.4 software cost-per-byte model."""

import pytest

from repro.algorithms.base import Operation
from repro.fleet import costmodel


class TestRelations:
    def test_zstd_low_vs_snappy(self):
        """§3.3.4: ZStd low-level compression costs 1.55x Snappy per byte."""
        low, high, decomp = costmodel.relation_checkpoints()
        assert low == pytest.approx(1.55, abs=0.08)

    def test_zstd_high_vs_low(self):
        """§3.3.4: high levels cost an additional 2.39x per byte."""
        _, high, _ = costmodel.relation_checkpoints()
        assert high == pytest.approx(2.39, abs=0.15)

    def test_zstd_decomp_vs_snappy(self):
        """§3.3.4: ZStd decompression is 1.63x Snappy decompression."""
        _, _, decomp = costmodel.relation_checkpoints()
        assert decomp == pytest.approx(1.63, abs=0.02)

    def test_migration_scenario_67_percent(self):
        """§3.3.4: 25% Snappy-comp service -> highest ZStd = +67% cycles."""
        low, high, _ = costmodel.relation_checkpoints()
        increase = 0.25 * (low * high - 1.0)
        assert increase == pytest.approx(0.67, abs=0.08)


class TestCostFunctions:
    def test_heavyweights_cost_more_than_lightweights(self):
        for op in Operation:
            heavy = min(
                costmodel.cost_per_byte(a, op) for a in ("zstd", "flate", "brotli")
            )
            light = max(
                costmodel.cost_per_byte(a, op) for a in ("snappy", "gipfeli", "lzo")
            )
            assert heavy > light * 0.6  # overlapping but shifted upward

    def test_zstd_level_monotone(self):
        costs = [costmodel.zstd_compress_cost(l) for l in range(-5, 23)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_level_passed_through_for_zstd_compression(self):
        cheap = costmodel.cost_per_byte("zstd", Operation.COMPRESS, level=1)
        pricey = costmodel.cost_per_byte("zstd", Operation.COMPRESS, level=19)
        assert pricey > 2 * cheap

    def test_level_ignored_for_decompression(self):
        a = costmodel.cost_per_byte("zstd", Operation.DECOMPRESS, level=1)
        b = costmodel.cost_per_byte("zstd", Operation.DECOMPRESS, level=19)
        assert a == b

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            costmodel.cost_per_byte("lz4", Operation.COMPRESS)

    def test_call_cycles_includes_overhead(self):
        base = costmodel.call_cycles("snappy", Operation.COMPRESS, 0)
        assert base == costmodel.PER_CALL_OVERHEAD_CYCLES
        bigger = costmodel.call_cycles("snappy", Operation.COMPRESS, 10_000)
        assert bigger > base
