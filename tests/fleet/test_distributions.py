"""Unit tests for the calibrated fleet distribution tables."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.common.rng import make_rng
from repro.fleet.distributions import (
    CALL_SIZE_BINS,
    CALL_SIZE_BYTE_MASS,
    CALLER_SHARES,
    CYCLE_SHARES,
    FILE_FORMAT_CALLERS,
    FLEET_RATIO_BY_BIN,
    WINDOW_SIZE_BINS,
    ZSTD_LEVEL_PMF,
    ZSTD_WINDOW_BYTE_MASS,
    expected_bytes_per_call,
    sample_from_byte_mass,
    sample_levels,
    sample_windows,
)


class TestCycleShares:
    def test_shares_sum_to_100(self):
        assert sum(CYCLE_SHARES.values()) == pytest.approx(100.0, abs=0.1)

    def test_decompression_is_56_percent(self):
        """§3.2: 56% of (de)compression cycles are decompression."""
        decomp = sum(v for (a, o), v in CYCLE_SHARES.items() if o is Operation.DECOMPRESS)
        assert decomp == pytest.approx(56.0, abs=1.0)

    def test_figure1_legend_values(self):
        assert CYCLE_SHARES[("snappy", Operation.COMPRESS)] == 19.5
        assert CYCLE_SHARES[("zstd", Operation.DECOMPRESS)] == 25.8
        assert CYCLE_SHARES[("gipfeli", Operation.COMPRESS)] == 0.1


class TestLevelDistribution:
    def test_pmf_sums_to_one(self):
        assert sum(ZSTD_LEVEL_PMF.values()) == pytest.approx(1.0, abs=1e-6)

    def test_figure2b_checkpoints(self):
        at_or_below_3 = sum(p for l, p in ZSTD_LEVEL_PMF.items() if l <= 3)
        at_or_below_5 = sum(p for l, p in ZSTD_LEVEL_PMF.items() if l <= 5)
        above_11 = sum(p for l, p in ZSTD_LEVEL_PMF.items() if l >= 12)
        assert at_or_below_3 == pytest.approx(0.88, abs=0.01)
        assert at_or_below_5 == pytest.approx(0.95, abs=0.01)
        assert above_11 < 0.00002  # "fewer than 0.002% of bytes"

    def test_default_level_dominates(self):
        assert ZSTD_LEVEL_PMF[3] == max(ZSTD_LEVEL_PMF.values())


class TestRatioBins:
    def test_figure2c_relations(self):
        """ZStd low = 1.46x Snappy; ZStd high = 1.35x ZStd low (§3.3.3)."""
        assert FLEET_RATIO_BY_BIN["zstd_low"] / FLEET_RATIO_BY_BIN["snappy"] == pytest.approx(
            1.46, abs=0.02
        )
        assert FLEET_RATIO_BY_BIN["zstd_high"] / FLEET_RATIO_BY_BIN["zstd_low"] == pytest.approx(
            1.35, abs=0.02
        )

    def test_no_bin_below_two(self):
        """'no algorithm having an aggregate compression ratio less than 2'."""
        assert all(r >= 2.0 for r in FLEET_RATIO_BY_BIN.values())


class TestCallSizeMasses:
    @pytest.mark.parametrize("key", sorted(CALL_SIZE_BYTE_MASS, key=str))
    def test_normalized(self, key):
        assert CALL_SIZE_BYTE_MASS[key].sum() == pytest.approx(1.0)

    def test_snappy_comp_quantiles(self):
        mass = CALL_SIZE_BYTE_MASS[("snappy", Operation.COMPRESS)]
        cdf = np.cumsum(mass)
        # 24% of bytes <= 32 KiB (bin 15); median between 64 and 128 KiB.
        assert cdf[CALL_SIZE_BINS.index(15)] == pytest.approx(0.24, abs=0.02)
        assert cdf[CALL_SIZE_BINS.index(16)] < 0.5 <= cdf[CALL_SIZE_BINS.index(17)]

    def test_zstd_comp_quantiles(self):
        mass = CALL_SIZE_BYTE_MASS[("zstd", Operation.COMPRESS)]
        cdf = np.cumsum(mass)
        assert cdf[CALL_SIZE_BINS.index(15)] == pytest.approx(0.08, abs=0.02)
        assert mass[CALL_SIZE_BINS.index(16)] == pytest.approx(0.28, abs=0.02)

    def test_snappy_decomp_quantiles(self):
        cdf = np.cumsum(CALL_SIZE_BYTE_MASS[("snappy", Operation.DECOMPRESS)])
        assert cdf[CALL_SIZE_BINS.index(17)] == pytest.approx(0.62, abs=0.02)
        assert cdf[CALL_SIZE_BINS.index(18)] == pytest.approx(0.80, abs=0.02)

    def test_zstd_decomp_median_in_1_2_mib(self):
        cdf = np.cumsum(CALL_SIZE_BYTE_MASS[("zstd", Operation.DECOMPRESS)])
        assert cdf[CALL_SIZE_BINS.index(20)] < 0.5 <= cdf[CALL_SIZE_BINS.index(21)]


class TestWindowMasses:
    def test_comp_median_at_32k(self):
        """§3.6: slightly over 50% of ZStd-compressed bytes use <= 32 KiB."""
        mass = ZSTD_WINDOW_BYTE_MASS[Operation.COMPRESS]
        assert mass[WINDOW_SIZE_BINS.index(15)] > 0.5

    def test_decomp_median_at_1mib(self):
        cdf = np.cumsum(ZSTD_WINDOW_BYTE_MASS[Operation.DECOMPRESS])
        assert cdf[WINDOW_SIZE_BINS.index(19)] < 0.5 <= cdf[WINDOW_SIZE_BINS.index(20)]

    def test_tails_reach_16mib(self):
        for mass in ZSTD_WINDOW_BYTE_MASS.values():
            assert mass[WINDOW_SIZE_BINS.index(24)] > 0


class TestCallerShares:
    def test_figure4_values_sum(self):
        assert sum(CALLER_SHARES.values()) == pytest.approx(99.9, abs=0.2)

    def test_file_formats_are_49_percent(self):
        """§3.5.2: 49% of cycles derive from file formats."""
        share = sum(CALLER_SHARES[c] for c in FILE_FORMAT_CALLERS)
        assert share == pytest.approx(49.1, abs=0.5)

    def test_rpc_is_largest_single_caller(self):
        assert max(CALLER_SHARES, key=CALLER_SHARES.get) == "RPC"


class TestSamplers:
    def test_byte_mass_sampling_reproduces_distribution(self):
        rng = make_rng(0, "test")
        mass = CALL_SIZE_BYTE_MASS[("snappy", Operation.COMPRESS)]
        sizes = sample_from_byte_mass(rng, CALL_SIZE_BINS, mass, 60_000)
        from repro.common.units import ceil_log2

        bins = np.array([ceil_log2(int(s)) for s in sizes])
        weights = sizes.astype(float)
        observed = np.array(
            [weights[bins == b].sum() for b in CALL_SIZE_BINS]
        )
        observed /= observed.sum()
        # Byte-weighted histogram must track the mass table.
        assert np.abs(np.cumsum(observed) - np.cumsum(mass)).max() < 0.06

    def test_level_sampler_range(self):
        levels = sample_levels(make_rng(1, "lvl"), 5000)
        assert levels.min() >= -7 and levels.max() <= 22

    def test_window_sampler_powers_of_two(self):
        windows = sample_windows(make_rng(1, "win"), Operation.COMPRESS, 2000)
        assert all((w & (w - 1)) == 0 for w in windows)

    def test_expected_bytes_per_call_ordering(self):
        """ZStd decompression calls are much larger than Snappy's (Fig. 3)."""
        assert expected_bytes_per_call("zstd", Operation.DECOMPRESS) > 3 * expected_bytes_per_call(
            "snappy", Operation.DECOMPRESS
        )
