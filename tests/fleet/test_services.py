"""Unit tests for the §3.2 service-intensity structure."""

import pytest

from repro.fleet.services import ALL_SERVICES, LONG_TAIL, TOP_SERVICES, top_sixteen_share


def test_sixteen_named_services():
    assert len(TOP_SERVICES) == 16


def test_top_sixteen_are_about_half_of_fleet_cycles():
    """§3.2: 'sixteen services constitute around half of all fleet-wide
    cycles' for Snappy/ZStd (de)compression."""
    assert top_sixteen_share() == pytest.approx(0.5, abs=0.1)


def test_one_service_near_50_percent_own_cycles():
    assert max(s.own_cycle_fraction for s in TOP_SERVICES) == pytest.approx(0.5, abs=0.02)


def test_another_service_over_35_percent():
    fractions = sorted((s.own_cycle_fraction for s in TOP_SERVICES), reverse=True)
    assert fractions[1] >= 0.35


def test_eight_services_in_10_to_25_percent_band():
    band = [s for s in TOP_SERVICES if 0.10 <= s.own_cycle_fraction <= 0.25]
    assert len(band) == 8


def test_shares_partition_the_fleet():
    assert sum(s.fleet_share for s in ALL_SERVICES) == pytest.approx(1.0)
    assert LONG_TAIL.fleet_share > 0
