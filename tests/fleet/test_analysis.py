"""The §3 analyses must recover the paper's published statistics from samples."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.fleet import analysis as A


class TestFigure1:
    def test_cycle_shares_track_legend(self, fleet_profile):
        from repro.fleet.distributions import CYCLE_SHARES

        shares = A.cycle_share_by_algorithm(fleet_profile)
        for key, expected in CYCLE_SHARES.items():
            assert shares[key] == pytest.approx(expected, abs=2.5), key

    def test_decompression_fraction_56(self, fleet_profile):
        assert A.decompression_cycle_fraction(fleet_profile) == pytest.approx(0.56, abs=0.035)


class TestFigure2a:
    def test_byte_shares_sum_to_100(self, fleet_profile):
        assert sum(A.bytes_by_algorithm(fleet_profile).values()) == pytest.approx(100.0)

    def test_lightweight_handles_64_percent_of_compressed_bytes(self, fleet_profile):
        """§3.8 lesson 1a."""
        assert A.lightweight_compress_byte_share(fleet_profile) == pytest.approx(0.64, abs=0.05)

    def test_heavyweight_produces_49_percent_of_decompressed_bytes(self, fleet_profile):
        """§3.3.1."""
        assert A.heavyweight_decompress_byte_share(fleet_profile) == pytest.approx(0.49, abs=0.05)

    def test_each_byte_decompressed_3_3_times(self, fleet_profile):
        """§3.3.1: 'each byte that is compressed ... is decompressed 3.3x'."""
        assert A.decompression_reuse_factor(fleet_profile) == pytest.approx(3.3, abs=0.45)


class TestFigure2b:
    def test_88_percent_at_level_3_or_lower(self, fleet_profile):
        assert A.zstd_level_cdf_at(fleet_profile, 3) == pytest.approx(0.88, abs=0.05)

    def test_95_percent_at_level_5_or_lower(self, fleet_profile):
        assert A.zstd_level_cdf_at(fleet_profile, 5) == pytest.approx(0.95, abs=0.04)

    def test_levels_12_plus_negligible(self, fleet_profile):
        assert 1.0 - A.zstd_level_cdf_at(fleet_profile, 11) < 0.002

    def test_distribution_sums_to_one(self, fleet_profile):
        assert sum(A.zstd_level_distribution(fleet_profile).values()) == pytest.approx(1.0)


class TestFigure2c:
    def test_ratio_relations(self, fleet_profile):
        ratios = A.compression_ratio_by_bin(fleet_profile)
        assert ratios["zstd_low"] / ratios["snappy"] == pytest.approx(1.46, rel=0.12)
        assert ratios["zstd_high"] / ratios["zstd_low"] == pytest.approx(1.35, rel=0.15)

    def test_all_major_bins_at_least_two(self, fleet_profile):
        ratios = A.compression_ratio_by_bin(fleet_profile)
        for name in ("snappy", "zstd_low", "zstd_high", "flate"):
            assert ratios[name] >= 1.8, name


class TestCostPerByte:
    def test_cost_relations(self, fleet_profile):
        costs = A.cost_per_byte_by_bin(fleet_profile)
        assert costs[("zstd_low", "compress")] / costs[("snappy", "compress")] == pytest.approx(
            1.55, rel=0.1
        )
        assert costs[("zstd_high", "compress")] / costs[("zstd_low", "compress")] == pytest.approx(
            2.39, rel=0.15
        )
        assert costs[("zstd", "decompress")] / costs[("snappy", "decompress")] == pytest.approx(
            1.63, rel=0.1
        )

    def test_migration_increase_67_percent(self, fleet_profile):
        """§3.3.4's 'non-starter' scenario."""
        assert A.migration_cycle_increase(fleet_profile) == pytest.approx(0.67, abs=0.12)

    def test_heavyweight_costlier_per_byte(self, fleet_profile):
        costs = A.cost_per_byte_by_bin(fleet_profile)
        assert costs[("zstd_low", "compress")] > costs[("snappy", "compress")]
        assert costs[("flate", "compress")] > costs[("snappy", "compress")]
        assert costs[("zstd", "decompress")] > costs[("snappy", "decompress")]


class TestFigure3:
    @pytest.mark.parametrize(
        "algo, op, median_bins",
        [
            ("snappy", Operation.COMPRESS, (16, 17)),
            ("zstd", Operation.COMPRESS, (16, 17)),
            ("snappy", Operation.DECOMPRESS, (16, 17)),
            ("zstd", Operation.DECOMPRESS, (21, 22)),
        ],
    )
    def test_median_bins(self, fleet_profile, algo, op, median_bins):
        assert A.median_call_size_bin(fleet_profile, algo, op) in median_bins

    def test_cdf_monotone_and_complete(self, fleet_profile):
        bins, cdf = A.call_size_cdf(fleet_profile, "snappy", Operation.COMPRESS)
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_snappy_decomp_more_small_biased_than_comp(self, fleet_profile):
        _, comp = A.call_size_cdf(fleet_profile, "snappy", Operation.COMPRESS)
        bins, decomp = A.call_size_cdf(fleet_profile, "snappy", Operation.DECOMPRESS)
        at_128k = bins.index(17)
        assert decomp[at_128k] > comp[at_128k]

    def test_unknown_pair_raises(self, fleet_profile):
        with pytest.raises(Exception):
            A.call_size_cdf(fleet_profile, "nonexistent", Operation.COMPRESS)


class TestFigure4:
    def test_caller_shares_track_figure(self, fleet_profile):
        from repro.fleet.distributions import CALLER_SHARES

        breakdown = A.caller_breakdown(fleet_profile)
        for caller, expected in CALLER_SHARES.items():
            assert breakdown[caller] == pytest.approx(expected, abs=1.5), caller

    def test_file_format_share_49(self, fleet_profile):
        assert A.file_format_cycle_share(fleet_profile) == pytest.approx(0.492, abs=0.03)


class TestFigure5:
    def test_comp_window_median_32k(self, fleet_profile):
        bins, cdf = A.window_size_cdf(fleet_profile, Operation.COMPRESS)
        assert cdf[bins.index(15)] > 0.5  # slightly over 50% at <= 32 KiB

    def test_decomp_window_median_1mib(self, fleet_profile):
        bins, cdf = A.window_size_cdf(fleet_profile, Operation.DECOMPRESS)
        assert cdf[bins.index(19)] < 0.5 <= cdf[bins.index(20)] + 0.05

    def test_tails_reach_16mib(self, fleet_profile):
        bins, cdf = A.window_size_cdf(fleet_profile, Operation.COMPRESS)
        assert cdf[bins.index(23)] < 1.0  # mass exists in the 16 MiB bin
