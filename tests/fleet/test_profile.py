"""Unit tests for the GWP-like fleet sampler."""

import numpy as np
import pytest

from repro.algorithms.base import Operation
from repro.fleet.profile import ALGORITHMS, NO_LEVEL, generate_fleet_profile, timeline_shares


class TestGeneration:
    def test_deterministic(self):
        a = generate_fleet_profile(seed=3, num_calls=5000)
        b = generate_fleet_profile(seed=3, num_calls=5000)
        assert (a.uncompressed_bytes == b.uncompressed_bytes).all()
        assert (a.cycles == b.cycles).all()

    def test_seed_changes_samples(self):
        a = generate_fleet_profile(seed=3, num_calls=5000)
        b = generate_fleet_profile(seed=4, num_calls=5000)
        assert (a.uncompressed_bytes != b.uncompressed_bytes).any()

    def test_too_few_calls_rejected(self):
        with pytest.raises(ValueError):
            generate_fleet_profile(num_calls=10)

    def test_all_algorithms_present(self, fleet_profile):
        assert set(np.unique(fleet_profile.algo)) == set(range(len(ALGORITHMS)))

    def test_compressed_never_exceeds_uncompressed_much(self, fleet_profile):
        assert (fleet_profile.compressed_bytes <= fleet_profile.uncompressed_bytes).all()

    def test_levels_only_for_zstd(self, fleet_profile):
        zstd_idx = ALGORITHMS.index("zstd")
        non_zstd = fleet_profile.algo != zstd_idx
        assert (fleet_profile.level[non_zstd] == NO_LEVEL).all()
        zstd_comp = (fleet_profile.algo == zstd_idx) & (fleet_profile.operation == 0)
        assert (fleet_profile.level[zstd_comp] >= -7).all()
        assert (fleet_profile.level[zstd_comp] <= 22).all()

    def test_windows_only_for_zstd(self, fleet_profile):
        zstd_idx = ALGORITHMS.index("zstd")
        non_zstd = fleet_profile.algo != zstd_idx
        assert (fleet_profile.window_size[non_zstd] == 0).all()
        assert (fleet_profile.window_size[fleet_profile.algo == zstd_idx] >= 1 << 15).all()

    def test_cycles_positive(self, fleet_profile):
        assert (fleet_profile.cycles > 0).all()

    def test_mask_composition(self, fleet_profile):
        mask = fleet_profile.mask("snappy", Operation.COMPRESS)
        assert mask.sum() > 0
        assert fleet_profile.total_cycles("snappy", Operation.COMPRESS) <= fleet_profile.total_cycles()


class TestTimeline:
    def test_each_slice_normalized_to_100(self):
        labels, shares = timeline_shares()
        totals = sum(np.asarray(curve) for curve in shares.values())
        assert np.allclose(totals, 100.0)

    def test_final_slice_matches_figure1_legend(self):
        from repro.fleet.distributions import CYCLE_SHARES

        _, shares = timeline_shares()
        for key, value in CYCLE_SHARES.items():
            assert shares[key][-1] == pytest.approx(value, abs=0.5)

    def test_zstd_starts_at_zero_and_ramps_within_a_year(self):
        """§3.4: ZStd went 0% -> 10% of fleet (de)compression in ~1 year."""
        labels, shares = timeline_shares(num_years=8, slices_per_year=3)
        zstd = shares[("zstd", Operation.COMPRESS)] + shares[("zstd", Operation.DECOMPRESS)]
        last_zero = int(np.max(np.flatnonzero(zstd < 1e-9)))
        first_at_ten = int(np.argmax(zstd >= 10.0))
        assert first_at_ten > last_zero
        # Crosses 10% within ~1.5 years (<= 5 slices at 3 slices/year).
        assert first_at_ten - last_zero <= 5

    def test_label_format(self):
        labels, _ = timeline_shares(num_years=2, slices_per_year=3)
        assert labels[0].startswith("Y1-")
        assert len(labels) == 6
