"""Unit tests for the ASCII reporting helpers."""

import pytest

from repro.analysis.textplot import bar_chart, cdf_plot, sparkline


class TestBarChart:
    def test_renders_all_labels(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], title="T")
        assert "T" in chart and " a |" in chart and "bb |" in chart

    def test_longest_bar_for_max(self):
        chart = bar_chart(["x", "y"], [1.0, 4.0], width=20)
        x_line, y_line = chart.splitlines()
        assert y_line.count("#") > x_line.count("#")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_is_title_only(self):
        assert bar_chart([], [], title="nothing") == "nothing"

    def test_units_rendered(self):
        assert "GB/s" in bar_chart(["a"], [3.0], unit="GB/s")


class TestCdfPlot:
    def test_rows_per_bin(self):
        plot = cdf_plot([10, 11], {"fleet": [0.2, 1.0], "suite": [0.25, 1.0]})
        assert plot.count("\n") == 2  # header + 2 bins - 1
        assert "fleet" in plot and "suite" in plot


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""
