#!/usr/bin/env python3
"""Run the paper's design-space exploration (§6, Figures 11-15).

Evaluates every placement x history-SRAM design point on HyperCompressBench
and prints the paper's figure tables plus the speculation study. The first
run generates and disk-caches the benchmark (~1 minute); later runs are fast.

Run:  python examples/dse_sweep.py [fig11|fig12|fig13|fig14|fig15|all]
"""

import sys

from repro.dse import DseRunner
from repro.dse.experiments import all_figures, speculation_study
from repro.dse.summaries import claim_checks


def main(which: str = "all") -> None:
    print("Preparing HyperCompressBench and the DSE runner ...")
    runner = DseRunner()

    figures = all_figures(runner)
    selected = figures if which == "all" else {which: figures[which]}
    for figure in selected.values():
        print()
        print(figure.to_table())

    if which in ("all", "fig14"):
        print("\nSpeculation study (§6.4):")
        for point in speculation_study(runner):
            print(
                f"  spec={point.speculation:<3d} speedup={point.speedup:5.2f}x "
                f"area={point.area_mm2:.3f} mm^2"
            )

    if which == "all":
        print("\nPaper claims vs this run:")
        for check in claim_checks(figures, speculation_study(runner)):
            print(check.render())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "all")
