#!/usr/bin/env python3
"""Service-level view: a shared CDPU under fleet-shaped load.

The paper evaluates isolated calls (§6.1); a deployed CDPU is a shared
station. This example drives one CDPU complex and a software core with the
same Poisson arrival trace and compares utilization and latency percentiles
across offered loads — including where each saturates.

Run:  python examples/service_latency.py
"""

from repro.core.params import CdpuConfig
from repro.dse import DseRunner
from repro.fleet import generate_fleet_profile
from repro.sim import ServiceModel, poisson_trace, simulate


def main() -> None:
    profile = generate_fleet_profile(seed=0, num_calls=120_000)
    runner = DseRunner()

    accel = ServiceModel.from_dse(runner, CdpuConfig())
    software = ServiceModel.software_baseline()

    print("One station, fleet-shaped Snappy+ZStd traffic, Poisson arrivals.\n")
    print(f"{'offered GB/s':>12s}  station")
    for offered in (0.1e9, 0.5e9, 2.0e9, 5.0e9):
        trace = poisson_trace(
            profile,
            seed=3,
            num_calls=4000,
            offered_bytes_per_second=offered,
            algorithms=["snappy", "zstd"],
        )
        sw = simulate(trace, software, lanes=1)
        hw = simulate(trace, accel, lanes=1)
        print(f"{offered / 1e9:12.1f}  {sw.summary('1 Xeon core (software)')}")
        print(f"{'':>12s}  {hw.summary('1 CDPU lane')}")
        if sw.utilization > 0.98:
            print(f"{'':>12s}  (software core saturated; queue unbounded)")
        print()

    print("Takeaway: a single CDPU lane absorbs several GB/s of fleet traffic")
    print("that would saturate multiple software cores — the deployment-side")
    print("view of the paper's 10-16x single-call speedups.")


if __name__ == "__main__":
    main()
