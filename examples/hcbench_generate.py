#!/usr/bin/env python3
"""Generate a custom HyperCompressBench from fleet statistics (§4).

Demonstrates the full generator pipeline at a custom scale and validates the
result against the fleet distributions, exactly as §4.1 does.

Run:  python examples/hcbench_generate.py [files_per_suite]
"""

import sys

from repro.algorithms.base import Operation
from repro.fleet import generate_fleet_profile
from repro.hcbench import GeneratorConfig, generate_hypercompressbench
from repro.hcbench.validation import validate_call_sizes, validate_ratios


def main(files_per_suite: int = 24) -> None:
    config = GeneratorConfig(seed=7, files_per_suite=files_per_suite)
    print(
        f"Generating {4 * files_per_suite} benchmark files "
        f"(size scale 1/{config.size_scale}, chunk {config.chunk_size} B) ..."
    )
    bench = generate_hypercompressbench(config)

    print("\nSuites:")
    for (algo, op), suite in bench.suites.items():
        sizes = sorted(len(f.data) for f in suite.files)
        print(
            f"  {op.short}-{algo:<7s} {len(suite):3d} files, "
            f"{suite.total_uncompressed_bytes / 1024:8.0f} KiB total, "
            f"sizes {sizes[0]}..{sizes[-1]} B, "
            f"SW ratio {suite.software_compression_ratio():.2f}x"
        )

    fleet = generate_fleet_profile(seed=7)
    print("\nValidation vs fleet (Figure 7 + §4.1):")
    for (algo, op), ks in validate_call_sizes(bench, fleet).items():
        print(f"  {op.short}-{algo:<7s} call-size KS distance: {ks:.3f}")
    for algo, (achieved, implied, fleet_ratio) in validate_ratios(bench, fleet).items():
        print(
            f"  {algo:<7s} ratio: achieved {achieved:.2f} / targets {implied:.2f} "
            f"/ fleet {fleet_ratio:.2f}"
        )

    example = bench.suite("zstd", Operation.COMPRESS).files[0]
    print(
        f"\nEach file carries its usage parameters, e.g. {example.name}: "
        f"level={example.level}, window={example.window_size}, "
        f"target ratio={example.target_ratio:.2f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
