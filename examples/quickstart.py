#!/usr/bin/env python3
"""Quickstart: codecs, a CDPU instance, and one accelerated call.

Run:  python examples/quickstart.py
"""

from repro import CdpuConfig, CdpuGenerator, Operation, available_codecs, get_codec
from repro.core.area import fraction_of_xeon_core


def main() -> None:
    payload = (
        b"Hyperscale systems spend 2.9% of fleet CPU cycles on general-purpose "
        b"lossless compression and decompression. " * 400
    )

    print("== Software codecs (all built from shared LZ77/Huffman/FSE primitives) ==")
    for name in available_codecs():
        codec = get_codec(name)
        compressed = codec.compress(payload)
        assert codec.decompress(compressed) == payload
        print(
            f"  {codec.info.display_name:<8s} [{codec.info.weight_class.value:<11s}] "
            f"ratio = {len(payload) / len(compressed):5.2f}x"
        )

    print("\n== A flagship CDPU (64K history, 2^14 hash entries, spec 16, RoCC) ==")
    cdpu = CdpuGenerator().generate(CdpuConfig())
    for algo in ("snappy", "zstd"):
        for op in (Operation.COMPRESS, Operation.DECOMPRESS):
            pipeline = cdpu.pipeline(algo, op)
            if op is Operation.COMPRESS:
                result = pipeline.run(payload, verify=True)
            else:
                stream = get_codec(algo).compress(payload)
                result = pipeline.run(stream, verify=True)
            area = cdpu.area_mm2(algo, op)
            print(
                f"  {op.short}-{algo:<7s} {result.throughput_gbps:6.2f} GB/s (model), "
                f"{area:.3f} mm^2 = {100 * fraction_of_xeon_core(area):.1f}% of a Xeon core, "
                f"bottleneck: {result.report.bottleneck}"
            )

    print("\nEvery result above is functional: outputs are verified against the")
    print("software codecs before a single cycle is accounted.")


if __name__ == "__main__":
    main()
