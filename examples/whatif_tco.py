#!/usr/bin/env python3
"""What can CDPUs buy the fleet? The §3.3 resource trade-off, quantified.

The paper's motivating argument: an accelerator that removes the CPU cost of
heavyweight compression lets services adopt high compression ratios "for
free", saving storage, network, and memory — savings worth more than the
recovered cycles. This example runs that scenario at several adoption levels
and relates it to the silicon budget a fleet-wide deployment needs.

Run:  python examples/whatif_tco.py
"""

from repro.core import CdpuComplex, CdpuConfig
from repro.fleet import generate_fleet_profile, migration_what_if


def main() -> None:
    profile = generate_fleet_profile(seed=0, num_calls=120_000)

    print("Scenario: migrate Snappy + low-level ZStd traffic to CDPU-accelerated")
    print("high-level ZStd (paper §3.3 — 'save storage/memory/network resources")
    print("by changing the trade-off space').\n")

    print(f"{'adoption':>9s} {'agg. ratio':>11s} {'CPU cycles':>11s} {'bytes':>8s} {'cost':>7s}")
    for adoption in (0.0, 0.25, 0.5, 0.75, 1.0):
        report = migration_what_if(profile, adoption=adoption)
        print(
            f"{100 * adoption:8.0f}% "
            f"{report.accelerated.aggregate_ratio:10.2f}x "
            f"{-100 * report.cpu_cycle_reduction:+10.1f}% "
            f"{-100 * report.compressed_byte_reduction:+7.1f}% "
            f"{-100 * report.cost_reduction:+6.1f}%"
        )

    full = migration_what_if(profile)
    print()
    print(full.render())

    silicon = CdpuComplex(CdpuConfig())
    print(
        f"\nSilicon to deploy per socket (Snappy C+D + ZStd C+D, one lane each): "
        f"{silicon.area_mm2():.2f} mm^2"
        f" — {100 * silicon.area_mm2() / 17.98:.0f}% of one Xeon core tile."
    )
    print("At 2.9% of fleet cycles spent (de)compressing, the cycle savings alone")
    print(
        f"return ~{0.029 * full.cpu_cycle_reduction * 100:.1f}% of *all* fleet CPU time, "
        "before counting the byte savings."
    )


if __name__ == "__main__":
    main()
