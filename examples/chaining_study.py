#!/usr/bin/env python3
"""Accelerator chaining: serialize-then-compress under each placement (§3.5.2).

Nearly half of fleet (de)compression cycles come from file formats that
serialize protobufs and compress the result. This example runs that chained
data-access operation — really serializing RPC-log records to protobuf wire
format, really compressing them — under each accelerator placement, showing
why the paper argues for near-core CDPUs with L2-resident intermediates.

Run:  python examples/chaining_study.py [num_records]
"""

import sys

from repro.chaining import RPC_LOG_SCHEMA, chaining_study, render_study, sample_records
from repro.soc.placement import Placement


def main(num_records: int = 400) -> None:
    records = sample_records(seed=0, count=num_records)
    print(f"Chained operation over {num_records} RPC-log records "
          f"(schema: {RPC_LOG_SCHEMA.name})\n")

    results = chaining_study(RPC_LOG_SCHEMA, records)
    print(render_study(results))

    near = results[Placement.ROCC.value]
    pcie = results[Placement.PCIE_NO_CACHE.value]
    software = results["software"]
    print()
    print(f"near-core chain vs all-software : {software.total_cycles / near.total_cycles:5.1f}x faster")
    print(f"PCIe chain vs near-core chain   : {pcie.total_cycles / near.total_cycles:5.1f}x slower")
    print(f"wire bytes {near.wire_bytes} -> compressed {near.compressed_bytes} "
          f"({near.wire_bytes / near.compressed_bytes:.2f}x)")
    print()
    print("Paper §3.8 lesson 4b: chaining concerns 'can be avoided while")
    print("maintaining most chaining benefits if the accelerator is placed close")
    print("to the CPU, with direct access to caches or main memory'.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
