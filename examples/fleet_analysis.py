#!/usr/bin/env python3
"""Reproduce the paper's fleet profiling study (§3, Figures 1-5).

Samples a synthetic GWP-like fleet and recomputes every published statistic.

Run:  python examples/fleet_analysis.py [num_calls]
"""

import sys

from repro.algorithms.base import Operation
from repro.analysis.textplot import bar_chart, sparkline
from repro.fleet import analysis as A
from repro.fleet import generate_fleet_profile, timeline_shares


def main(num_calls: int = 150_000) -> None:
    print(f"Sampling {num_calls:,} fleet (de)compression calls ...\n")
    profile = generate_fleet_profile(seed=0, num_calls=num_calls)

    print("== Figure 1 (final slice): cycle share by algorithm/op ==")
    shares = A.cycle_share_by_algorithm(profile)
    ordered = sorted(shares.items(), key=lambda kv: -kv[1])
    print(
        bar_chart(
            [f"{op.short}-{algo}" for (algo, op), _ in ordered if _ > 0.05],
            [v for _, v in ordered if v > 0.05],
            unit="%",
        )
    )
    print(f"\ndecompression fraction: {100 * A.decompression_cycle_fraction(profile):.1f}% (paper: 56%)")

    print("\n== Figure 1 history: ZStd adoption ramp (§3.4) ==")
    labels, series = timeline_shares()
    zstd = series[("zstd", Operation.COMPRESS)] + series[("zstd", Operation.DECOMPRESS)]
    print(f"  ZStd share over {len(labels)} slices: {sparkline(zstd)}")

    print("\n== Figure 2: bytes, levels, ratios ==")
    print(f"  lightweight share of compressed bytes : {100 * A.lightweight_compress_byte_share(profile):.0f}% (paper: 64%)")
    print(f"  heavyweight share of decompressed     : {100 * A.heavyweight_decompress_byte_share(profile):.0f}% (paper: 49%)")
    print(f"  decompressions per compressed byte    : {A.decompression_reuse_factor(profile):.2f} (paper: 3.3)")
    print(f"  ZStd bytes at level <= 3              : {100 * A.zstd_level_cdf_at(profile, 3):.0f}% (paper: 88%)")
    print(f"  ZStd bytes at level <= 5              : {100 * A.zstd_level_cdf_at(profile, 5):.0f}% (paper: 95%)")
    ratios = A.compression_ratio_by_bin(profile)
    print(f"  ratios: snappy {ratios['snappy']:.2f}  zstd(low) {ratios['zstd_low']:.2f}  zstd(high) {ratios['zstd_high']:.2f}")

    print("\n== §3.3.4: why services cannot just raise compression levels ==")
    costs = A.cost_per_byte_by_bin(profile)
    print(f"  zstd-low / snappy compression cost : {costs[('zstd_low', 'compress')] / costs[('snappy', 'compress')]:.2f}x (paper: 1.55x)")
    print(f"  zstd-high / zstd-low               : {costs[('zstd_high', 'compress')] / costs[('zstd_low', 'compress')]:.2f}x (paper: 2.39x)")
    print(f"  a 25%-Snappy service moving to high ZStd: +{100 * A.migration_cycle_increase(profile):.0f}% cycles (paper: +67%, 'a non-starter')")

    print("\n== Figure 3: byte-weighted median call-size bins (ceil log2) ==")
    for algo in ("snappy", "zstd"):
        for op in Operation:
            b = A.median_call_size_bin(profile, algo, op)
            print(f"  {op.short}-{algo:<7s} median bin {b} ({2 ** b // 1024} KiB)")

    print("\n== Figure 4: top calling libraries ==")
    callers = sorted(A.caller_breakdown(profile).items(), key=lambda kv: -kv[1])[:6]
    for name, share in callers:
        print(f"  {name:<22s} {share:5.1f}%")
    print(f"  (file formats total {100 * A.file_format_cycle_share(profile):.1f}%; paper: 49.2%)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150_000)
