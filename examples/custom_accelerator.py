#!/usr/bin/env python3
"""Design your own CDPU: a constrained design-space search.

Answers the question a deployment team actually asks: *given an area budget,
which configuration maximizes suite speedup, and what does each placement
cost me?* — the §6.6 workflow as a library call.

Run:  python examples/custom_accelerator.py [area_budget_mm2]
"""

import sys

from repro.algorithms.base import Operation
from repro.core.area import fraction_of_xeon_core
from repro.core.params import CdpuConfig
from repro.dse import DseRunner
from repro.dse.sweeps import SRAM_SIZES
from repro.soc.placement import Placement


def search(runner: DseRunner, area_budget_mm2: float):
    """Exhaustive search over the Snappy-compressor design space."""
    best = None
    for sram in SRAM_SIZES:
        for ht_log in (9, 11, 14):
            config = CdpuConfig(
                encoder_history_bytes=sram, hash_table_entries=1 << ht_log
            )
            point = runner.evaluate(config, "snappy", Operation.COMPRESS)
            if point.area_mm2 <= area_budget_mm2:
                if best is None or point.speedup > best.speedup:
                    best = point
    return best


def main(area_budget_mm2: float = 0.45) -> None:
    runner = DseRunner()

    print(f"Searching Snappy-compressor configs within {area_budget_mm2} mm^2 ...")
    best = search(runner, area_budget_mm2)
    if best is None:
        print("  no configuration fits the budget")
        return
    config = best.config
    print(
        f"  best: {config.label()}  speedup={best.speedup:.1f}x  "
        f"area={best.area_mm2:.3f} mm^2 "
        f"({100 * fraction_of_xeon_core(best.area_mm2):.1f}% of a Xeon core)  "
        f"ratio vs SW={best.ratio_vs_software:.3f}"
    )

    print("\nPlacement sensitivity of that design:")
    for placement in Placement:
        point = runner.evaluate(
            config.with_(placement=placement), "snappy", Operation.COMPRESS
        )
        print(f"  {placement.value:<15s} speedup={point.speedup:6.2f}x")

    print("\nAnd the same silicon running decompression:")
    decomp = runner.evaluate(
        CdpuConfig(decoder_history_bytes=config.encoder_history_bytes),
        "snappy",
        Operation.DECOMPRESS,
    )
    print(
        f"  D-snappy {config.label()}: speedup={decomp.speedup:.1f}x, "
        f"area={decomp.area_mm2:.3f} mm^2"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.45)
